package stream

import (
	"math/rand"
	"testing"

	"rock/internal/dataset"
	"rock/internal/model"
)

// template makes the defining item set [base, base+n).
func template(base, n int) dataset.Transaction {
	t := make(dataset.Transaction, n)
	for i := range t {
		t[i] = dataset.Item(base + i)
	}
	return t
}

// draw samples a size-k subset of tpl; with k = 3/4 of |tpl| two draws are
// Jaccard ≈ 0.6 apart, comfortably above theta 0.5.
func draw(tpl dataset.Transaction, k int, rng *rand.Rand) dataset.Transaction {
	perm := rng.Perm(len(tpl))
	t := make(dataset.Transaction, k)
	for i := 0; i < k; i++ {
		t[i] = tpl[perm[i]]
	}
	t.Normalize()
	return t
}

// junk makes a transaction of globally unique items: no neighbors, ever.
var junkNext = 1 << 20

func junk(n int) dataset.Transaction {
	t := make(dataset.Transaction, n)
	for i := range t {
		t[i] = dataset.Item(junkNext)
		junkNext++
	}
	return t
}

func testConfig() Config {
	return Config{
		Theta:          0.5,
		ReclusterEvery: 64,
		MinPromote:     8,
		WindowSize:     128,
		Seed:           1,
	}
}

// TestColdStartPromotesClusters: from an empty clusterer, draws from two
// separated templates pool up, the re-cluster promotes both groups as
// clusters (not four, not one), and subsequent draws are absorbed.
func TestColdStartPromotesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := template(0, 20), template(100, 20)
	c := New(testConfig())
	for i := 0; i < 200; i++ {
		tpl := a
		if i%2 == 1 {
			tpl = b
		}
		c.Observe(draw(tpl, 15, rng))
	}
	clusters, _, _ := c.Stats()
	if len(clusters) != 2 {
		t.Fatalf("want 2 clusters after cold start, got %d: %+v", len(clusters), clusters)
	}
	if c.metrics.Promoted.Load() == 0 || c.metrics.Absorbed.Load() == 0 {
		t.Fatalf("promoted %d, absorbed %d: both must be positive",
			c.metrics.Promoted.Load(), c.metrics.Absorbed.Load())
	}
	// Once clusters exist, fresh draws fold without pooling.
	for i := 0; i < 50; i++ {
		tpl := a
		if i%2 == 1 {
			tpl = b
		}
		if disp := c.Observe(draw(tpl, 15, rng)); !disp.Absorbed {
			t.Fatalf("draw %d pooled after clusters formed", i)
		}
	}
}

// TestSeedAndFold: a clusterer seeded from a snapshot absorbs member draws
// into the right cluster and pools genuine outliers.
func TestSeedAndFold(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, b := template(0, 20), template(200, 20)
	snap := seededSnapshot(t, rng, a, b)
	c := New(testConfig())
	if err := c.Seed(snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if disp := c.Observe(draw(a, 15, rng)); !disp.Absorbed || disp.Cluster != 0 {
			t.Fatalf("template-A draw %d: %+v, want absorbed into 0", i, disp)
		}
		if disp := c.Observe(draw(b, 15, rng)); !disp.Absorbed || disp.Cluster != 1 {
			t.Fatalf("template-B draw %d: %+v, want absorbed into 1", i, disp)
		}
	}
	if disp := c.Observe(junk(15)); disp.Absorbed {
		t.Fatal("junk transaction was absorbed")
	}
}

// seededSnapshot builds a two-cluster snapshot from template draws.
func seededSnapshot(t *testing.T, rng *rand.Rand, tpls ...dataset.Transaction) *model.Snapshot {
	t.Helper()
	snap := &model.Snapshot{Theta: 0.5, FTheta: (1 - 0.5) / (1 + 0.5), SimName: "jaccard"}
	for ci, tpl := range tpls {
		points := make([]int, 0, 20)
		for i := 0; i < 20; i++ {
			points = append(points, len(snap.Txns))
			snap.Txns = append(snap.Txns, draw(tpl, 15, rng))
		}
		snap.Sets = append(snap.Sets, model.Set{Cluster: ci, Norm: 1, Points: points})
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestBuildSnapshotCompiles: the built snapshot validates, carries stream
// stats, compiles, and labels template draws back to their clusters.
func TestBuildSnapshotCompiles(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b := template(0, 20), template(200, 20)
	c := New(testConfig())
	if err := c.Seed(seededSnapshot(t, rng, a, b)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Observe(draw(a, 15, rng))
		c.Observe(draw(b, 15, rng))
	}
	c.Observe(junk(15))
	snap := c.BuildSnapshot()
	if snap == nil {
		t.Fatal("BuildSnapshot returned nil with live clusters")
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if snap.Stats == nil || snap.Stats.Points != 201 || snap.Stats.Outliers == 0 {
		t.Fatalf("bad stats: %+v", snap.Stats)
	}
	asn, err := model.Compile(snap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if cl, _ := asn.Assign(draw(a, 15, rng)); cl != 0 {
			t.Fatalf("template-A draw labeled %d", cl)
		}
		if cl, _ := asn.Assign(draw(b, 15, rng)); cl != 1 {
			t.Fatalf("template-B draw labeled %d", cl)
		}
	}
}

// TestMergeTarget: a candidate rep set drawn from an existing cluster's
// distribution merges into it; one from a foreign distribution does not.
func TestMergeTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a, b := template(0, 20), template(200, 20)
	c := New(testConfig())
	if err := c.Seed(seededSnapshot(t, rng, a)); err != nil {
		t.Fatal(err)
	}
	same := make([]dataset.Transaction, 8)
	for i := range same {
		same[i] = draw(a, 15, rng)
	}
	if got := c.mergeTarget(same); got == nil || got.id != 0 {
		t.Fatalf("same-distribution reps did not merge into cluster 0: %v", got)
	}
	other := make([]dataset.Transaction, 8)
	for i := range other {
		other[i] = draw(b, 15, rng)
	}
	if got := c.mergeTarget(other); got != nil {
		t.Fatalf("foreign reps merged into cluster %d", got.id)
	}
}

// TestPromoteMergesDuplicates: pooled draws from an existing cluster's
// drifted twin merge back instead of spawning a duplicate cluster.
func TestPromoteMergesDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := template(0, 20)
	cfg := testConfig()
	cfg.ReclusterEvery = 32
	c := New(cfg)
	if err := c.Seed(seededSnapshot(t, rng, a)); err != nil {
		t.Fatal(err)
	}
	// Force draws into the pool directly (as if theta-misses), then
	// re-cluster: they must merge into cluster 0, not become cluster 1.
	c.mu.Lock()
	for i := 0; i < 40; i++ {
		c.total++
		c.pool.add(draw(a, 15, rng), c.total)
	}
	c.recluster()
	c.mu.Unlock()
	clusters, _, _ := c.Stats()
	if len(clusters) != 1 {
		t.Fatalf("duplicate cluster spawned: %+v", clusters)
	}
	if c.metrics.Merges.Load() != 1 {
		t.Fatalf("merges = %d, want 1", c.metrics.Merges.Load())
	}
	if clusters[0].Size <= 20 {
		t.Fatalf("merge did not grow cluster 0: size %d", clusters[0].Size)
	}
}

// TestAgeOut: junk that never promotes ages out of the pool.
func TestAgeOut(t *testing.T) {
	cfg := testConfig()
	cfg.ReclusterEvery = 16
	cfg.MinPromote = 1000 // never promote
	cfg.MaxAge = 20
	c := New(cfg)
	for i := 0; i < 100; i++ {
		c.Observe(junk(10))
	}
	if aged := c.metrics.Aged.Load(); aged == 0 {
		t.Fatal("nothing aged out")
	}
	_, poolSize, _ := c.Stats()
	if poolSize > 40 {
		t.Fatalf("pool grew unboundedly: %d", poolSize)
	}
}

// TestWindowRate: the sliding window tracks the recent outlier fraction and
// forgets old history.
func TestWindowRate(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := template(0, 20)
	cfg := testConfig()
	cfg.WindowSize = 64
	c := New(cfg)
	if err := c.Seed(seededSnapshot(t, rng, a)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		c.Observe(junk(10))
	}
	if r := c.WindowRate(); r != 1 {
		t.Fatalf("all-junk window rate %v, want 1", r)
	}
	for i := 0; i < 64; i++ {
		c.Observe(draw(a, 15, rng))
	}
	if r := c.WindowRate(); r != 0 {
		t.Fatalf("all-member window rate %v, want 0", r)
	}
	if fill := c.WindowFill(); fill != 64 {
		t.Fatalf("window fill %d, want 64", fill)
	}
}

// TestRepRefreshTracksDrift: under gradual vocabulary rotation the same
// cluster keeps absorbing (no duplicate is spawned) and its representatives
// migrate onto the new vocabulary.
func TestRepRefreshTracksDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tpl := template(0, 20).Clone()
	c := New(testConfig())
	if err := c.Seed(seededSnapshot(t, rng, tpl)); err != nil {
		t.Fatal(err)
	}
	// Rotate 2 of 20 items per step, 8 steps: by the end 16/20 items are
	// fresh, far past theta-similarity with the original vocabulary — but
	// each step is small enough that draws keep folding.
	next := dataset.Item(1000)
	absorbed, total := 0, 0
	for step := 0; step < 8; step++ {
		for i := 0; i < 2; i++ {
			tpl[rng.Intn(len(tpl))] = next
			next++
		}
		tpl.Normalize()
		for i := 0; i < 100; i++ {
			total++
			if c.Observe(draw(tpl, 15, rng)).Absorbed {
				absorbed++
			}
		}
	}
	if absorbed < total*9/10 {
		t.Fatalf("only %d/%d draws absorbed under gradual drift", absorbed, total)
	}
	if created := c.metrics.ClustersCreated.Load(); created != 0 {
		t.Fatalf("gradual drift spawned %d duplicate clusters", created)
	}
	// Representatives must now be dominated by the rotated vocabulary.
	fresh := template(1000, int(next)-1000)
	c.mu.Lock()
	defer c.mu.Unlock()
	rotated := 0
	for _, r := range c.clusters[0].repTxns {
		if r.IntersectLen(fresh) > len(r)/2 {
			rotated++
		}
	}
	if rotated < len(c.clusters[0].repTxns)/2 {
		t.Fatalf("only %d/%d representatives follow the rotated vocabulary",
			rotated, len(c.clusters[0].repTxns))
	}
}
