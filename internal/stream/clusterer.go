// Package stream is the online tier of the pipeline: a clusterer that folds
// an unbounded transaction stream into an evolving ROCK clustering and
// periodically publishes it as model snapshots the serving fleet hot-reloads.
//
// The batch trainer (internal/train) answers "cluster this corpus"; this
// package answers "keep a clustering current while the corpus never stops
// arriving". The design keeps the paper's machinery but swaps the static
// corpus for a bounded working set:
//
//   - Every cluster is summarized by a few representative transactions
//     (CURE-style scatter, cure.ScatterMedoid) plus a reservoir-sampled
//     labeled subset for the published model.
//   - The representatives of all clusters form a small link universe
//     maintained incrementally in a links.Dynamic bitset. An arrival's link
//     count to a cluster is computed against that universe, and the fold
//     decision is the paper's Eq. 2 goodness criterion with n_j = 1:
//     crossLinks(t, C) / ((n+1)^(1+2f) - n^(1+2f) - 1).
//   - Arrivals that fit no cluster land in a bounded outlier pool indexed by
//     the incremental prefix-filter join (simjoin.IncIndex). The pool is
//     periodically re-clustered with the full ROCK algorithm; dense groups
//     are promoted to new clusters (or merged into an existing one they
//     duplicate), stale singletons age out.
//   - A sliding window of fold outcomes yields the rolling outlier rate —
//     the drift score. The publisher refuses to ship a generation whose rate
//     regresses past a bound, so a drifting stream degrades into "stale
//     model keeps serving" rather than "broken model reaches the fleet".
package stream

import (
	"math/rand"
	"sync"
	"time"

	"rock/internal/cure"
	"rock/internal/dataset"
	"rock/internal/links"
	"rock/internal/rockcore"
	"rock/internal/sim"
	"rock/internal/simjoin"
)

// Config parameterizes the online clusterer. The zero value of every field
// selects a sensible default; Theta alone must be set deliberately.
type Config struct {
	// Theta is the neighbor similarity threshold (Section 3.1).
	Theta float64
	// SimName names the transaction similarity ("jaccard", "dice",
	// "overlap", "cosine"); empty selects "jaccard".
	SimName string
	// F maps theta to the f(theta) exponent; nil selects the paper's
	// (1-theta)/(1+theta).
	F func(theta float64) float64

	// NumRep is the number of representative transactions kept per cluster
	// (default 8). Representatives are what arrivals are compared against,
	// so fold cost is O(clusters · NumRep) similarity evaluations.
	NumRep int
	// MinFoldGoodness is the Eq. 2 goodness an arrival must reach against
	// its best cluster to be absorbed (default 0.2). True members score an
	// order of magnitude above it; points with a single marginal neighbor
	// and no shared link structure score below it and go to the pool.
	MinFoldGoodness float64
	// MinMergeGoodness is the rep-set goodness above which a pool cluster
	// is merged into an existing cluster instead of promoted as a new one
	// (default: MinFoldGoodness). This is what keeps a re-clustered pool
	// from spawning duplicates of clusters that already exist.
	MinMergeGoodness float64
	// MaxLabel caps the labeled reservoir per cluster (default 128),
	// matching the batch trainer's per-cluster labeled-set cap.
	MaxLabel int
	// PendingCap bounds the recent-absorb buffer fueling representative
	// refresh (default 32); RefreshEvery is how many absorptions between
	// refreshes (default 32). Refresh re-scatters representatives from the
	// current ones plus the pending buffer, which is how representatives
	// track a drifting cluster.
	PendingCap   int
	RefreshEvery int

	// PoolCap bounds the outlier pool (default 4096); reaching it forces a
	// re-cluster. ReclusterEvery re-clusters after that many pooled
	// arrivals (default 512). MinPromote is the minimum pool-cluster size
	// promoted to a real cluster (default 8); MinNeighbors is the
	// isolation prune inside the pool re-cluster (default 2). MaxAge ages
	// un-promoted pool entries out after that many total arrivals
	// (default 8192).
	PoolCap        int
	ReclusterEvery int
	MinPromote     int
	MinNeighbors   int
	MaxAge         int

	// WindowSize is the sliding window (in arrivals) over which the
	// rolling outlier rate — the drift score — is computed (default 2048).
	WindowSize int

	// Seed seeds the internal RNG (reservoir sampling, scatter medoid
	// estimation).
	Seed int64
}

func (c *Config) simName() string {
	if c.SimName == "" {
		return "jaccard"
	}
	return c.SimName
}

func (c *Config) numRep() int {
	if c.NumRep <= 0 {
		return 8
	}
	return c.NumRep
}

func (c *Config) minFoldGoodness() float64 {
	if c.MinFoldGoodness <= 0 {
		return 0.2
	}
	return c.MinFoldGoodness
}

func (c *Config) minMergeGoodness() float64 {
	if c.MinMergeGoodness <= 0 {
		return c.minFoldGoodness()
	}
	return c.MinMergeGoodness
}

func (c *Config) maxLabel() int {
	if c.MaxLabel <= 0 {
		return 128
	}
	return c.MaxLabel
}

func (c *Config) pendingCap() int {
	if c.PendingCap <= 0 {
		return 32
	}
	return c.PendingCap
}

func (c *Config) refreshEvery() int {
	if c.RefreshEvery <= 0 {
		return 32
	}
	return c.RefreshEvery
}

func (c *Config) poolCap() int {
	if c.PoolCap <= 0 {
		return 4096
	}
	return c.PoolCap
}

func (c *Config) reclusterEvery() int {
	if c.ReclusterEvery <= 0 {
		return 512
	}
	return c.ReclusterEvery
}

func (c *Config) minPromote() int {
	if c.MinPromote <= 0 {
		return 8
	}
	return c.MinPromote
}

func (c *Config) minNeighbors() int {
	if c.MinNeighbors <= 0 {
		return 2
	}
	return c.MinNeighbors
}

func (c *Config) maxAge() int {
	if c.MaxAge <= 0 {
		return 8192
	}
	return c.MaxAge
}

func (c *Config) windowSize() int {
	if c.WindowSize <= 0 {
		return 2048
	}
	return c.WindowSize
}

// cluster is one live cluster: a stable id, the representative transactions
// registered in the shared link universe, a reservoir-sampled labeled subset
// for publishing, and a short buffer of recent absorptions that feeds
// representative refresh.
type cluster struct {
	id   int
	size int64
	// repTxns and repSlots align: repSlots[i] is repTxns[i]'s slot in the
	// Dynamic link universe.
	repTxns  []dataset.Transaction
	repSlots []int32
	// labeled is the reservoir (cap Config.MaxLabel); labeledSeen counts
	// every candidate ever offered, driving uniform reservoir sampling.
	labeled     []dataset.Transaction
	labeledSeen int64
	// pending holds recent absorptions awaiting the next rep refresh.
	pending       []dataset.Transaction
	sinceRefresh  int
	lastAbsorbSeq int64
}

// Clusterer is the online ROCK clusterer. All methods are safe for
// concurrent use; internally a single mutex serializes stream mutation, so
// one Clusterer behaves like a single logical consumer of the stream.
type Clusterer struct {
	mu    sync.Mutex
	cfg   Config
	theta float64
	f     float64
	simF  sim.TxnFunc
	rng   *rand.Rand

	d        *links.Dynamic
	clusters []*cluster // ascending stable id; clusters are never removed
	nextID   int

	pool *pool

	total int64 // arrivals observed

	// Sliding outlier window: a ring of 0/1 outcomes per arrival.
	window    []uint8
	windowPos int
	windowLen int
	windowSum int

	metrics Metrics
}

// Disposition reports what Observe did with one arrival.
type Disposition struct {
	// Absorbed is true when the arrival folded into a cluster; Cluster is
	// then that cluster's stable id. When false the arrival went to the
	// outlier pool.
	Absorbed bool
	Cluster  int
}

// New builds a Clusterer. It panics when the similarity name is unknown or
// theta is outside [0,1] — both are static misconfiguration, not runtime
// conditions.
func New(cfg Config) *Clusterer {
	if cfg.Theta < 0 || cfg.Theta > 1 {
		panic("stream: theta out of [0,1]")
	}
	simF, ok := sim.TxnByName(cfg.simName())
	if !ok {
		panic("stream: unknown similarity " + cfg.simName())
	}
	measure, ok := simjoin.MeasureByName(cfg.simName())
	if !ok {
		panic("stream: similarity " + cfg.simName() + " has no join measure")
	}
	fFunc := cfg.F
	if fFunc == nil {
		fFunc = rockcore.DefaultF
	}
	c := &Clusterer{
		cfg:    cfg,
		theta:  cfg.Theta,
		f:      fFunc(cfg.Theta),
		simF:   simF,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		d:      links.NewDynamic(),
		pool:   newPool(measure, cfg.Theta),
		window: make([]uint8, cfg.windowSize()),
	}
	return c
}

// Metrics returns the clusterer's metrics block. The pointer is stable for
// the clusterer's lifetime.
func (c *Clusterer) Metrics() *Metrics { return &c.metrics }

// Observe folds one transaction into the clustering: absorbed into the best
// cluster when its Eq. 2 goodness clears MinFoldGoodness, pooled otherwise.
// Pooling may trigger a pool re-cluster (promotion, merge, age-out) inline.
func (c *Clusterer) Observe(t dataset.Transaction) Disposition {
	start := time.Now()
	if !t.IsNormalized() {
		t = t.Clone()
		t.Normalize()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++

	best, bestG := c.bestCluster(t)
	if best != nil && bestG >= c.cfg.minFoldGoodness() {
		c.absorb(best, t)
		c.pushWindow(0)
		c.metrics.Absorbed.Add(1)
		c.metrics.FoldLatency.Observe(time.Since(start))
		return Disposition{Absorbed: true, Cluster: best.id}
	}
	c.poolAdd(t)
	c.pushWindow(1)
	c.metrics.Outliered.Add(1)
	c.metrics.FoldLatency.Observe(time.Since(start))
	return Disposition{}
}

// bestCluster evaluates the arrival against every cluster's representatives
// and returns the best-goodness candidate. The link universe is the set of
// all live representatives: N(t) within it is the probe bitset, and
// crossLinks(t, C) = sum over C's reps r of |N(t) ∩ N(r)|, plus one for each
// rep directly theta-adjacent to t (the arrival itself witnesses that pair —
// without the bonus a single-representative cluster could never score).
func (c *Clusterer) bestCluster(t dataset.Transaction) (*cluster, float64) {
	if len(c.clusters) == 0 {
		return nil, 0
	}
	probe := c.d.NewProbe()
	type candidate struct {
		cl     *cluster
		direct int
	}
	var cands []candidate
	for _, cl := range c.clusters {
		direct := 0
		for i, r := range cl.repTxns {
			if c.simF(t, r) >= c.theta {
				c.d.Mark(probe, cl.repSlots[i])
				direct++
			}
		}
		if direct > 0 {
			cands = append(cands, candidate{cl, direct})
		}
	}
	var best *cluster
	bestG := 0.0
	for _, cd := range cands {
		cross := cd.direct
		for _, s := range cd.cl.repSlots {
			cross += c.d.Common(probe, s)
		}
		g := float64(cross) / rockcore.ExpectedCrossLinks(len(cd.cl.repSlots), 1, c.f)
		if g > bestG {
			bestG, best = g, cd.cl
		}
	}
	return best, bestG
}

// absorb adds t to cl: size, labeled reservoir, pending buffer, and a
// representative refresh every RefreshEvery absorptions.
func (c *Clusterer) absorb(cl *cluster, t dataset.Transaction) {
	cl.size++
	cl.lastAbsorbSeq = c.total
	c.reservoirAdd(cl, t)
	if len(cl.pending) >= c.cfg.pendingCap() {
		copy(cl.pending, cl.pending[1:])
		cl.pending = cl.pending[:len(cl.pending)-1]
	}
	cl.pending = append(cl.pending, t)
	cl.sinceRefresh++
	if cl.sinceRefresh >= c.cfg.refreshEvery() {
		cl.sinceRefresh = 0
		c.refreshReps(cl)
	}
}

// reservoirAdd offers t to cl's labeled reservoir (algorithm R).
func (c *Clusterer) reservoirAdd(cl *cluster, t dataset.Transaction) {
	cl.labeledSeen++
	if len(cl.labeled) < c.cfg.maxLabel() {
		cl.labeled = append(cl.labeled, t)
		return
	}
	if j := c.rng.Int63n(cl.labeledSeen); j < int64(len(cl.labeled)) {
		cl.labeled[j] = t
	}
}

// refreshReps re-scatters cl's representatives from the pending buffer of
// recent absorptions and re-registers them in the link universe. This is
// the mechanism by which representatives follow a drifting cluster: the
// scatter runs over what the cluster absorbed lately, so the old
// representatives are replaced outright rather than competing — the
// farthest-point scatter would otherwise keep stale representatives forever
// precisely because drift makes them the most scattered extremes. Only when
// the buffer is thinner than the representative count do the current
// representatives pad out the candidate set.
func (c *Clusterer) refreshReps(cl *cluster) {
	cands := make([]dataset.Transaction, 0, len(cl.repTxns)+len(cl.pending))
	cands = append(cands, cl.pending...)
	if len(cands) < c.cfg.numRep() {
		cands = append(cands, cl.repTxns...)
	}
	cl.pending = cl.pending[:0]
	if len(cands) == 0 {
		return
	}
	picked := cure.ScatterMedoid(len(cands), c.cfg.numRep(), scatterMedoidCap,
		func(i, j int) float64 { return 1 - c.simF(cands[i], cands[j]) }, c.rng)
	reps := make([]dataset.Transaction, len(picked))
	for i, p := range picked {
		reps[i] = cands[p]
	}
	for _, s := range cl.repSlots {
		c.d.Remove(s)
	}
	cl.repSlots = cl.repSlots[:0]
	c.registerReps(cl, reps)
}

// scatterMedoidCap bounds the medoid estimation subset; rep refresh works on
// tens of candidates so the cap never binds there, but promotion can hand
// hundreds of members to the scatter.
const scatterMedoidCap = 512

// registerReps installs reps as cl's representatives, wiring each into the
// Dynamic link universe with its theta-adjacencies against every live
// representative (including reps of cl registered earlier in this call).
func (c *Clusterer) registerReps(cl *cluster, reps []dataset.Transaction) {
	cl.repTxns = reps
	var nbrs []int32
	for _, r := range reps {
		nbrs = nbrs[:0]
		for _, other := range c.clusters {
			for i, s := range other.repSlots {
				if c.simF(r, other.repTxns[i]) >= c.theta {
					nbrs = append(nbrs, s)
				}
			}
		}
		// cl may not be in c.clusters yet (promotion registers before
		// appending); its own earlier reps still need adjacency.
		if !c.hasCluster(cl) {
			for i, s := range cl.repSlots {
				if c.simF(r, cl.repTxns[i]) >= c.theta {
					nbrs = append(nbrs, s)
				}
			}
		}
		cl.repSlots = append(cl.repSlots, c.d.Add(nbrs))
	}
	// repTxns was replaced wholesale; keep only as many as got slots.
	cl.repTxns = cl.repTxns[:len(cl.repSlots)]
}

func (c *Clusterer) hasCluster(cl *cluster) bool {
	for _, x := range c.clusters {
		if x == cl {
			return true
		}
	}
	return false
}

// pushWindow records one fold outcome (1 = pooled) in the sliding window.
func (c *Clusterer) pushWindow(bit uint8) {
	if c.windowLen == len(c.window) {
		c.windowSum -= int(c.window[c.windowPos])
	} else {
		c.windowLen++
	}
	c.window[c.windowPos] = bit
	c.windowSum += int(bit)
	c.windowPos = (c.windowPos + 1) % len(c.window)
}

// WindowRate returns the rolling outlier rate — the drift score: the
// fraction of the last WindowSize arrivals that fit no cluster.
func (c *Clusterer) WindowRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.windowRateLocked()
}

func (c *Clusterer) windowRateLocked() float64 {
	if c.windowLen == 0 {
		return 0
	}
	return float64(c.windowSum) / float64(c.windowLen)
}

// WindowFill returns how many arrivals the window currently covers.
func (c *Clusterer) WindowFill() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.windowLen
}

// Arrivals returns the number of transactions observed so far.
func (c *Clusterer) Arrivals() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// ClusterStat describes one live cluster for introspection endpoints.
type ClusterStat struct {
	ID      int   `json:"id"`
	Size    int64 `json:"size"`
	Reps    int   `json:"reps"`
	Labeled int   `json:"labeled"`
}

// Stats returns a point-in-time view of the clusterer's state.
func (c *Clusterer) Stats() (clusters []ClusterStat, poolSize int, windowRate float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	clusters = make([]ClusterStat, len(c.clusters))
	for i, cl := range c.clusters {
		clusters[i] = ClusterStat{ID: cl.id, Size: cl.size, Reps: len(cl.repTxns), Labeled: len(cl.labeled)}
	}
	return clusters, c.pool.len(), c.windowRateLocked()
}
