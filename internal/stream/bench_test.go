package stream_test

import (
	"math/rand"
	"testing"

	"rock/internal/datagen"
	"rock/internal/dataset"
	"rock/internal/stream"
)

// BenchmarkObserve measures steady-state fold throughput: a warmed clusterer
// (clusters already promoted) absorbing a stationary basket stream. This is
// the number the EXPERIMENTS.md drift drill quotes as the absorb rate.
func BenchmarkObserve(b *testing.B) {
	gen := datagen.NewDriftStream(datagen.DriftConfig{
		Basket: datagen.ScaledBasketConfig(10),
	}, rand.New(rand.NewSource(7)))
	c := stream.New(stream.Config{
		Theta:          0.5,
		ReclusterEvery: 128,
		MinPromote:     8,
		Seed:           9,
	})
	for i := 0; i < 4000; i++ {
		txn, _ := gen.Next()
		c.Observe(txn)
	}
	txns := make([]dataset.Transaction, 4096)
	for i := range txns {
		txns[i], _ = gen.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(txns[i%len(txns)])
	}
}
