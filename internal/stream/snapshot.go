package stream

import (
	"fmt"

	"rock/internal/model"
	"rock/internal/rockcore"
)

// BuildSnapshot freezes the current clustering into a publishable model
// snapshot: one labeled set per live cluster (the reservoir), cluster
// indices assigned contiguously in stable-id order, Section 4.6 norms
// re-derived from the reservoir sizes, and TrainStats carrying the stream's
// arrival counts and rolling outlier rate. Returns nil when no clusters
// exist yet — there is nothing a fleet could serve.
func (c *Clusterer) BuildSnapshot() *model.Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buildSnapshotLocked()
}

func (c *Clusterer) buildSnapshotLocked() *model.Snapshot {
	snap := &model.Snapshot{
		Theta:   c.theta,
		FTheta:  c.f,
		SimName: c.cfg.simName(),
	}
	for _, cl := range c.clusters {
		if len(cl.labeled) == 0 {
			continue
		}
		points := make([]int, len(cl.labeled))
		for i, t := range cl.labeled {
			points[i] = len(snap.Txns)
			snap.Txns = append(snap.Txns, t)
		}
		snap.Sets = append(snap.Sets, model.Set{
			Cluster: len(snap.Sets),
			Norm:    rockcore.ExpectedNeighbors(len(points), c.f),
			Points:  points,
		})
	}
	if len(snap.Sets) == 0 {
		return nil
	}
	outliers := c.metrics.Outliered.Load() - c.metrics.Promoted.Load()
	if outliers < 0 {
		outliers = 0
	}
	if outliers > c.total {
		outliers = c.total
	}
	snap.Stats = &model.TrainStats{
		Points:      c.total,
		Outliers:    outliers,
		OutlierRate: c.windowRateLocked(),
	}
	return snap
}

// Seed primes an empty clusterer from a previously published snapshot —
// the restart path: the daemon resumes folding into the clusters the fleet
// is already serving instead of re-discovering them through the pool. The
// snapshot must have been trained with the same similarity and theta, or
// the fold criterion would not mean the same thing it did at publish time.
func (c *Clusterer) Seed(snap *model.Snapshot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.clusters) != 0 || c.total != 0 {
		return fmt.Errorf("stream: Seed on a non-empty clusterer")
	}
	if snap.SimName != c.cfg.simName() {
		return fmt.Errorf("stream: snapshot similarity %q, clusterer uses %q", snap.SimName, c.cfg.simName())
	}
	if snap.Theta != c.theta {
		return fmt.Errorf("stream: snapshot theta %v, clusterer uses %v", snap.Theta, c.theta)
	}
	for _, set := range snap.Sets {
		if len(set.Points) == 0 {
			continue
		}
		cl := &cluster{id: c.nextID, size: int64(len(set.Points))}
		c.nextID++
		for _, p := range set.Points {
			c.reservoirAdd(cl, snap.Txns[p])
		}
		c.registerReps(cl, c.scatterTxns(cl.labeled))
		c.clusters = append(c.clusters, cl)
	}
	return nil
}
