package stream

import (
	"context"
	"os"
	"strconv"
	"strings"
	"time"

	"rock/internal/dataset"
)

// Tailer follows a transaction text file the way `tail -f` follows a log:
// it polls for appended bytes, parses every complete line as a transaction,
// and hands it to the sink. Partial lines (a writer mid-append) stay
// buffered until their newline arrives; a shrinking file is treated as a
// truncate-and-rewrite and re-read from the start. The file not existing
// yet is not an error — the tailer waits for it.
type Tailer struct {
	// Path is the file to follow.
	Path string
	// Poll is the polling interval (default 200ms).
	Poll time.Duration
	// FromStart replays the file's existing content before following; the
	// default starts at the current end, like tail -f.
	FromStart bool
	// OnError, when non-nil, observes per-line parse errors; the tailer
	// skips the line and keeps going either way.
	OnError func(line string, err error)
}

func (t *Tailer) poll() time.Duration {
	if t.Poll <= 0 {
		return 200 * time.Millisecond
	}
	return t.Poll
}

// Run follows the file until ctx is cancelled, calling sink for every
// parsed transaction. Only ctx cancellation ends it; transient read errors
// are retried on the next poll.
func (t *Tailer) Run(ctx context.Context, sink func(dataset.Transaction)) error {
	var offset int64
	var pending []byte
	seeded := t.FromStart // FromStart means offset 0 is already correct
	tick := time.NewTicker(t.poll())
	defer tick.Stop()
	for {
		info, err := os.Stat(t.Path)
		if err == nil {
			if !seeded {
				offset = info.Size()
				seeded = true
			}
			if info.Size() < offset {
				// Truncated: start over, drop any partial line.
				offset = 0
				pending = pending[:0]
			}
			if info.Size() > offset {
				n, err := t.drain(offset, info.Size(), &pending, sink)
				if err == nil {
					offset += n
				}
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// drain reads [offset, size) from the file, emits the complete lines and
// keeps the trailing partial line in *pending. Returns how many bytes were
// consumed from the file.
func (t *Tailer) drain(offset, size int64, pending *[]byte, sink func(dataset.Transaction)) (int64, error) {
	f, err := os.Open(t.Path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if _, err := f.Seek(offset, 0); err != nil {
		return 0, err
	}
	buf := make([]byte, size-offset)
	n, err := f.Read(buf)
	if n == 0 {
		return 0, err
	}
	buf = buf[:n]
	data := append(*pending, buf...)
	for {
		nl := -1
		for i, b := range data {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break
		}
		line := string(data[:nl])
		data = data[nl+1:]
		txn, perr := parseTxnLine(line)
		if perr != nil {
			if t.OnError != nil {
				t.OnError(line, perr)
			}
			continue
		}
		if len(txn) > 0 {
			sink(txn)
		}
	}
	*pending = append((*pending)[:0], data...)
	return int64(n), nil
}

// parseTxnLine parses one text-format line: space-separated item ids.
func parseTxnLine(line string) (dataset.Transaction, error) {
	fields := strings.Fields(line)
	txn := make(dataset.Transaction, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		txn = append(txn, dataset.Item(v))
	}
	txn.Normalize()
	return txn, nil
}
