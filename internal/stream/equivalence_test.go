package stream_test

// The online-vs-batch equivalence gate: on a stationary stream the
// incremental clusterer must reach the same clustering the batch trainer
// computes from the full corpus — Adjusted Rand Index >= 0.95 over the
// points both pipelines assign. This is the acceptance bar that says the
// streaming shortcuts (representative link universe, pool promotion,
// reservoir labeling) did not change what the algorithm computes, only
// when it computes it.

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"rock/internal/datagen"
	"rock/internal/dataset"
	"rock/internal/eval"
	"rock/internal/label"
	"rock/internal/model"
	"rock/internal/stream"
	"rock/internal/train"
)

func streamDivisor() int {
	if v := os.Getenv("ROCKSTREAM_E2E_DIVISOR"); v != "" {
		if d, err := strconv.Atoi(v); err == nil && d >= 1 {
			return d
		}
	}
	return 10
}

func TestStreamMatchesBatchARI(t *testing.T) {
	div := streamDivisor()
	basket := datagen.ScaledBasketConfig(div)
	gen := datagen.NewDriftStream(datagen.DriftConfig{Basket: basket}, rand.New(rand.NewSource(21)))
	n := basket.Outliers
	for _, s := range basket.ClusterSizes {
		n += s
	}

	c := stream.New(stream.Config{
		Theta:          0.5,
		ReclusterEvery: 128,
		MinPromote:     8,
		Seed:           5,
	})
	txns := make([]dataset.Transaction, 0, n)
	for i := 0; i < n; i++ {
		txn, _ := gen.Next()
		txns = append(txns, txn)
		c.Observe(txn)
	}
	snap := c.BuildSnapshot()
	if snap == nil {
		t.Fatal("stream produced no clusters")
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	asn, err := model.Compile(snap)
	if err != nil {
		t.Fatal(err)
	}

	res, err := train.Train(train.SliceOpener(txns), train.Config{
		K: len(basket.ClusterSizes), Theta: 0.5, Shards: 1,
		MinNeighbors: 2, StopMultiple: 3, MinClusterSize: 5,
		Seed: 3, KeepAssignments: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// ARI over the points both pipelines assign; outliers on either side
	// have no cluster identity to compare.
	streamOf := make(map[int][]int) // stream cluster -> compacted point ids
	var batchLabels []int
	both := 0
	for i, txn := range txns {
		sc, _ := asn.Assign(txn)
		bc := res.Assignments[i]
		if sc == label.Outlier || bc == label.Outlier {
			continue
		}
		streamOf[sc] = append(streamOf[sc], both)
		batchLabels = append(batchLabels, bc)
		both++
	}
	if both < n*7/10 {
		t.Fatalf("only %d/%d points assigned by both pipelines", both, n)
	}
	clusters := make([][]int, 0, len(streamOf))
	for _, members := range streamOf {
		clusters = append(clusters, members)
	}
	ari := eval.AdjustedRand(clusters, batchLabels, res.Clusters)
	t.Logf("divisor %d: %d txns, stream %d clusters vs batch %d, %d mutually assigned, ARI %.4f",
		div, n, len(snap.Sets), res.Clusters, both, ari)
	if ari < 0.95 {
		t.Fatalf("stream-vs-batch ARI %.4f below the 0.95 gate", ari)
	}
}
