package stream_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rock/internal/dataset"
	"rock/internal/model"
	"rock/internal/promtext"
	"rock/internal/store"
	"rock/internal/stream"
)

// txnLines renders transactions in the ingest wire format.
func txnLines(txns []dataset.Transaction) string {
	var b strings.Builder
	for _, t := range txns {
		for i, it := range t {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", it)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// testTemplateDraws draws k-item subsets of [base, base+20).
func testTemplateDraws(base, count int, rng *rand.Rand) []dataset.Transaction {
	tpl := make(dataset.Transaction, 20)
	for i := range tpl {
		tpl[i] = dataset.Item(base + i)
	}
	out := make([]dataset.Transaction, count)
	for c := range out {
		perm := rng.Perm(20)
		t := make(dataset.Transaction, 15)
		for i := range t {
			t[i] = tpl[perm[i]]
		}
		t.Normalize()
		out[c] = t
	}
	return out
}

func TestServerIngestStatusMetricsPublish(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := stream.New(stream.Config{Theta: 0.5, ReclusterEvery: 32, MinPromote: 8, Seed: 2})
	dir, err := model.OpenDir(store.OS, t.TempDir(), "model", 0)
	if err != nil {
		t.Fatal(err)
	}
	pub := stream.NewPublisher(c, stream.PublishConfig{Dir: dir})
	ts := httptest.NewServer(stream.NewServer(c, pub))
	defer ts.Close()

	// Ingest two clusters' worth of draws plus one malformed line.
	body := txnLines(testTemplateDraws(0, 100, rng)) +
		"not a number\n" +
		txnLines(testTemplateDraws(500, 100, rng))
	resp, err := http.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ir stream.IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ir.Received != 200 || ir.Rejected != 1 {
		t.Fatalf("ingest response %+v, want 200 received 1 rejected", ir)
	}
	if ir.Absorbed+ir.Pooled != ir.Received {
		t.Fatalf("absorbed %d + pooled %d != received %d", ir.Absorbed, ir.Pooled, ir.Received)
	}
	if ir.Absorbed == 0 {
		t.Fatal("nothing absorbed after promotion")
	}

	// Status endpoint agrees.
	resp, err = http.Get(ts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	var si stream.StreamInfo
	if err := json.NewDecoder(resp.Body).Decode(&si); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if si.Arrivals != 200 || len(si.Clusters) != 2 {
		t.Fatalf("status %+v, want 200 arrivals 2 clusters", si)
	}

	// Forced publish writes generation 1.
	resp, err = http.Post(ts.URL+"/v1/publish", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pr stream.PublishResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pr.Seq != 1 || pr.Clusters != 2 {
		t.Fatalf("publish response %+v", pr)
	}
	ents, err := dir.List()
	if err != nil || len(ents) != 1 {
		t.Fatalf("dir entries %v, %v", ents, err)
	}

	// Metrics parse and carry the fold counters.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	samples, err := promtext.Parse(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	sums := map[string]float64{}
	promtext.Sum(sums, samples)
	if sums["rock_stream_arrivals_total"] != 200 {
		t.Fatalf("metrics arrivals %v, want 200", sums["rock_stream_arrivals_total"])
	}
	if sums["rock_stream_generations_total"] != 1 {
		t.Fatalf("metrics generations %v, want 1", sums["rock_stream_generations_total"])
	}
	if sums["rock_stream_ingest_errors_total"] != 1 {
		t.Fatalf("metrics ingest errors %v, want 1", sums["rock_stream_ingest_errors_total"])
	}

	// Healthz.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
}

// TestPublishGuard: a publisher with a tight ceiling refuses to ship while
// the rolling outlier rate is high, and the HTTP surface reports 409.
func TestPublishGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	c := stream.New(stream.Config{Theta: 0.5, ReclusterEvery: 32, MinPromote: 8, WindowSize: 64, Seed: 2})
	dir, err := model.OpenDir(store.OS, t.TempDir(), "model", 0)
	if err != nil {
		t.Fatal(err)
	}
	pub := stream.NewPublisher(c, stream.PublishConfig{
		Dir:            dir,
		MaxOutlierRate: 0.5,
		MinWindow:      32,
	})
	ts := httptest.NewServer(stream.NewServer(c, pub))
	defer ts.Close()

	// Build one real cluster, then flood the window with junk so the
	// rolling outlier rate pins near 1.
	for _, txn := range testTemplateDraws(0, 64, rng) {
		c.Observe(txn)
	}
	next := 1 << 25
	for i := 0; i < 64; i++ {
		j := make(dataset.Transaction, 10)
		for k := range j {
			j[k] = dataset.Item(next)
			next++
		}
		c.Observe(j)
	}
	resp, err := http.Post(ts.URL+"/v1/publish", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("guarded publish returned %d, want 409", resp.StatusCode)
	}
	if c.Metrics().PublishSkipped.Load() != 1 {
		t.Fatalf("publish_skipped %d, want 1", c.Metrics().PublishSkipped.Load())
	}
	if ents, _ := dir.List(); len(ents) != 0 {
		t.Fatalf("guarded publish still wrote %v", ents)
	}
}

func TestTailerFollowsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.txt")
	if err := os.WriteFile(path, []byte("1 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := make(chan dataset.Transaction, 16)
	tl := &stream.Tailer{Path: path, Poll: 5 * time.Millisecond, FromStart: true}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		tl.Run(ctx, func(txn dataset.Transaction) { got <- txn })
		close(done)
	}()

	want := func(items ...dataset.Item) {
		t.Helper()
		select {
		case txn := <-got:
			if !txn.Equal(dataset.Transaction(items)) {
				t.Fatalf("tailed %v, want %v", txn, items)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %v", items)
		}
	}
	want(1, 2, 3) // FromStart replays existing content

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A partial line stays buffered until its newline arrives.
	if _, err := f.WriteString("10 2"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(25 * time.Millisecond)
	select {
	case txn := <-got:
		t.Fatalf("partial line emitted early: %v", txn)
	default:
	}
	if _, err := f.WriteString("0\n7 8 9\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	want(10, 20)
	want(7, 8, 9)

	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tailer did not stop on cancel")
	}
}
