package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rock/internal/model"
	"rock/internal/train"
)

// ErrNoClusters is returned by TryPublish when the clusterer has nothing to
// publish yet.
var ErrNoClusters = errors.New("stream: no clusters to publish")

// ErrGuarded wraps publishes refused by the drift guard; errors.Is works on
// the returned error.
var ErrGuarded = errors.New("stream: publish refused by drift guard")

// PublishConfig parameterizes the continuous publisher.
type PublishConfig struct {
	// Dir is the versioned snapshot directory generations are saved into.
	Dir *model.Dir
	// Fleet lists base URLs (daemons or gateways) POSTed a /v1/reload after
	// every publish. A gateway URL turns each publish into a coordinated
	// rolling reload of its replicas.
	Fleet []string
	// Interval publishes on a timer (default 1m; the Run loop's cadence).
	Interval time.Duration
	// EveryAbsorbed additionally publishes after that many absorbed
	// arrivals since the last generation (0 disables the count trigger).
	EveryAbsorbed int64

	// Drift guard: a publish is refused while the rolling outlier rate
	// exceeds MaxOutlierRate (default 0.9; negative disables), or exceeds
	// the rate at the previous successful publish by more than RegressBound
	// (default 0.25; negative disables). The guard only engages once the
	// window covers at least MinWindow arrivals (default 256) so a cold
	// start cannot trip it. The effect: when the stream drifts faster than
	// the clusterer adapts, the fleet keeps serving the last good
	// generation instead of receiving one trained mid-confusion.
	MaxOutlierRate float64
	RegressBound   float64
	MinWindow      int

	// Reload configures the per-URL reload retry policy.
	Reload train.ReloadOptions
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *PublishConfig) interval() time.Duration {
	if c.Interval <= 0 {
		return time.Minute
	}
	return c.Interval
}

func (c *PublishConfig) maxOutlierRate() float64 {
	if c.MaxOutlierRate == 0 {
		return 0.9
	}
	return c.MaxOutlierRate
}

func (c *PublishConfig) regressBound() float64 {
	if c.RegressBound == 0 {
		return 0.25
	}
	return c.RegressBound
}

func (c *PublishConfig) minWindow() int {
	if c.MinWindow <= 0 {
		return 256
	}
	return c.MinWindow
}

func (c *PublishConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Publisher snapshots the clusterer on a time/count cadence, saves each
// generation into the model directory, and triggers fleet reloads.
type Publisher struct {
	c   *Clusterer
	cfg PublishConfig

	mu           sync.Mutex
	lastRate     float64
	hasLast      bool
	lastAbsorbed int64
	lastSnap     *model.Snapshot
}

// NewPublisher builds a publisher; cfg.Dir must be set.
func NewPublisher(c *Clusterer, cfg PublishConfig) *Publisher {
	if cfg.Dir == nil {
		panic("stream: PublishConfig.Dir is required")
	}
	return &Publisher{c: c, cfg: cfg}
}

// LastSnapshot returns the most recently published snapshot (nil before the
// first publish).
func (p *Publisher) LastSnapshot() *model.Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastSnap
}

// Run publishes on the configured cadence until ctx is cancelled. Guard
// refusals and reload failures are logged and counted, never fatal: the
// publisher's job is to keep trying.
func (p *Publisher) Run(ctx context.Context) {
	interval := p.cfg.interval()
	poll := interval
	if p.cfg.EveryAbsorbed > 0 && poll > 250*time.Millisecond {
		poll = 250 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	lastPublish := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		due := time.Since(lastPublish) >= interval
		if !due && p.cfg.EveryAbsorbed > 0 {
			p.mu.Lock()
			last := p.lastAbsorbed
			p.mu.Unlock()
			due = p.c.Metrics().Absorbed.Load()-last >= p.cfg.EveryAbsorbed
		}
		if !due {
			continue
		}
		lastPublish = time.Now()
		if _, err := p.TryPublish(ctx); err != nil &&
			!errors.Is(err, ErrNoClusters) && !errors.Is(err, ErrGuarded) {
			p.cfg.logf("publish: %v", err)
		}
	}
}

// TryPublish builds a snapshot now, applies the drift guard, saves the
// generation and reloads the fleet. Returns the saved entry, or an error
// wrapping ErrNoClusters / ErrGuarded when nothing shipped.
func (p *Publisher) TryPublish(ctx context.Context) (model.Entry, error) {
	snap := p.c.BuildSnapshot()
	if snap == nil {
		return model.Entry{}, ErrNoClusters
	}
	rate := snap.Stats.OutlierRate
	if err := p.guard(rate); err != nil {
		p.c.Metrics().PublishSkipped.Add(1)
		p.cfg.logf("publish refused: %v", err)
		return model.Entry{}, err
	}
	entry, err := train.Publish(p.cfg.Dir, snap)
	if err != nil {
		return model.Entry{}, err
	}
	m := p.c.Metrics()
	m.Generations.Add(1)
	m.LastSeq.Store(entry.Seq)
	p.mu.Lock()
	p.lastRate = rate
	p.hasLast = true
	p.lastAbsorbed = m.Absorbed.Load()
	p.lastSnap = snap
	p.mu.Unlock()
	p.cfg.logf("published generation %d: %d clusters, %d labeled, outlier rate %.3f",
		entry.Seq, len(snap.Sets), len(snap.Txns), rate)
	p.reloadFleet(ctx)
	return entry, nil
}

func (p *Publisher) guard(rate float64) error {
	if p.c.WindowFill() < p.cfg.minWindow() {
		return nil
	}
	if ceil := p.cfg.maxOutlierRate(); ceil >= 0 && rate > ceil {
		return fmt.Errorf("%w: outlier rate %.3f above ceiling %.3f", ErrGuarded, rate, ceil)
	}
	p.mu.Lock()
	last, has := p.lastRate, p.hasLast
	p.mu.Unlock()
	if bound := p.cfg.regressBound(); has && bound >= 0 && rate > last+bound {
		return fmt.Errorf("%w: outlier rate %.3f regressed past %.3f (+%.3f bound)", ErrGuarded, rate, last, bound)
	}
	return nil
}

func (p *Publisher) reloadFleet(ctx context.Context) {
	for _, base := range p.cfg.Fleet {
		seq, err := train.PostReloadRetry(ctx, nil, base, p.cfg.Reload)
		if err != nil {
			p.c.Metrics().ReloadErrors.Add(1)
			p.cfg.logf("reload %s: %v", base, err)
			continue
		}
		p.cfg.logf("reloaded %s to generation %d", base, seq)
	}
}
