package stream

import (
	"rock/internal/cure"
	"rock/internal/dataset"
	"rock/internal/rockcore"
	"rock/internal/simjoin"
)

// pool is the bounded outlier buffer: arrivals that fit no cluster, indexed
// by the incremental prefix-filter join so a re-cluster has their
// theta-neighbor lists ready without an O(n²) pass.
type pool struct {
	measure simjoin.Measure
	theta   float64
	idx     *simjoin.IncIndex
	seqs    []int64 // arrival sequence number per pool entry
	// sinceRecluster counts pooled arrivals since the last re-cluster.
	sinceRecluster int
}

func newPool(m simjoin.Measure, theta float64) *pool {
	return &pool{measure: m, theta: theta, idx: simjoin.NewIncIndex(m, theta)}
}

func (p *pool) len() int { return p.idx.Len() }

func (p *pool) add(t dataset.Transaction, seq int64) {
	p.idx.Insert(t)
	p.seqs = append(p.seqs, seq)
	p.sinceRecluster++
}

// reset rebuilds the pool's index from the surviving entries.
func (p *pool) reset(txns []dataset.Transaction, seqs []int64) {
	p.idx = simjoin.NewIncIndex(p.measure, p.theta)
	p.seqs = p.seqs[:0]
	for i, t := range txns {
		p.idx.Insert(t)
		p.seqs = append(p.seqs, seqs[i])
	}
}

// poolAdd pools one arrival and re-clusters the pool when due: after
// ReclusterEvery pooled arrivals, or immediately at PoolCap.
func (c *Clusterer) poolAdd(t dataset.Transaction) {
	c.pool.add(t, c.total)
	if c.pool.sinceRecluster >= c.cfg.reclusterEvery() || c.pool.len() >= c.cfg.poolCap() {
		c.recluster()
	}
}

// recluster runs the full ROCK algorithm over the pool. Dense groups of at
// least MinPromote entries leave the pool: merged into an existing cluster
// when their representative sets share enough link structure (the pool
// re-discovering a cluster that already exists — common right after a drift
// step), promoted as a brand-new cluster otherwise. Entries that stay
// un-promoted past MaxAge arrivals age out, and the pool index is rebuilt
// from the survivors.
func (c *Clusterer) recluster() {
	c.pool.sinceRecluster = 0
	c.metrics.Reclusters.Add(1)
	taken := make([]bool, c.pool.len())

	if c.pool.len() > 0 {
		res, err := rockcore.ClusterNeighbors(c.pool.idx.Neighbors(), rockcore.Config{
			K:            1, // merge until no cross links remain; promotion picks the dense survivors
			Theta:        c.theta,
			F:            c.cfg.F,
			MinNeighbors: c.cfg.minNeighbors(),
		})
		if err == nil {
			for _, members := range res.Clusters {
				if len(members) < c.cfg.minPromote() {
					continue
				}
				txns := make([]dataset.Transaction, len(members))
				for i, m := range members {
					txns[i] = c.pool.idx.Txn(m)
					taken[m] = true
				}
				c.promote(txns)
			}
		}
	}

	// Age out what remains, rebuild the index from survivors.
	var keepTxns []dataset.Transaction
	var keepSeqs []int64
	aged := 0
	horizon := c.total - int64(c.cfg.maxAge())
	for i := 0; i < c.pool.len(); i++ {
		if taken[i] {
			continue
		}
		if c.pool.seqs[i] <= horizon {
			aged++
			continue
		}
		keepTxns = append(keepTxns, c.pool.idx.Txn(i))
		keepSeqs = append(keepSeqs, c.pool.seqs[i])
	}
	// A full pool whose entries neither promote nor age out would re-cluster
	// on every arrival; shed the oldest entries down to half capacity.
	if over := len(keepTxns) - c.cfg.poolCap()/2; over > 0 && len(keepTxns) >= c.cfg.poolCap() {
		aged += over
		keepTxns = keepTxns[over:]
		keepSeqs = keepSeqs[over:]
	}
	c.metrics.Aged.Add(int64(aged))
	c.pool.reset(keepTxns, keepSeqs)
}

// promote turns one dense pool group into cluster membership: merged into an
// existing cluster when the rep-set goodness clears MinMergeGoodness,
// created as a new cluster otherwise. Either way the group's transactions
// count as promoted — they found a home after being pooled.
func (c *Clusterer) promote(txns []dataset.Transaction) {
	reps := c.scatterTxns(txns)
	if target := c.mergeTarget(reps); target != nil {
		for _, t := range txns {
			target.size++
			c.reservoirAdd(target, t)
		}
		// Refresh with the promoted group's representatives AND the
		// target's current ones in the pending buffer: the re-scatter then
		// summarizes the union of both distributions.
		target.pending = append(target.pending, target.repTxns...)
		target.pending = append(target.pending, reps...)
		c.refreshReps(target)
		target.sinceRefresh = 0
		c.metrics.Promoted.Add(int64(len(txns)))
		c.metrics.Merges.Add(1)
		return
	}
	cl := &cluster{id: c.nextID, size: int64(len(txns))}
	c.nextID++
	for _, t := range txns {
		c.reservoirAdd(cl, t)
	}
	c.registerReps(cl, reps)
	c.clusters = append(c.clusters, cl)
	c.metrics.Promoted.Add(int64(len(txns)))
	c.metrics.ClustersCreated.Add(1)
}

// scatterTxns picks representative transactions for a member set via the
// medoid-seeded farthest-point scatter.
func (c *Clusterer) scatterTxns(txns []dataset.Transaction) []dataset.Transaction {
	picked := cure.ScatterMedoid(len(txns), c.cfg.numRep(), scatterMedoidCap,
		func(i, j int) float64 { return 1 - c.simF(txns[i], txns[j]) }, c.rng)
	reps := make([]dataset.Transaction, len(picked))
	for i, p := range picked {
		reps[i] = txns[p]
	}
	return reps
}

// mergeTarget returns the existing cluster the candidate representative set
// duplicates, or nil. The test is Eq. 2 goodness computed at representative
// granularity: the link universe is the union of the two rep sets, and
// crossLinks is the sum over cross pairs of their common-neighbor counts
// plus one per directly adjacent pair (same bonus as the fold path). Two
// rep sets drawn from the same distribution are densely adjacent and score
// far above MinMergeGoodness; genuinely distinct clusters score zero.
func (c *Clusterer) mergeTarget(cand []dataset.Transaction) *cluster {
	var best *cluster
	bestG := 0.0
	for _, cl := range c.clusters {
		g := c.repSetGoodness(cand, cl.repTxns)
		if g > bestG {
			bestG, best = g, cl
		}
	}
	if best != nil && bestG >= c.cfg.minMergeGoodness() {
		return best
	}
	return nil
}

func (c *Clusterer) repSetGoodness(a, b []dataset.Transaction) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	u := make([]dataset.Transaction, 0, len(a)+len(b))
	u = append(u, a...)
	u = append(u, b...)
	n := len(u)
	adj := make([]bool, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if c.simF(u[i], u[j]) >= c.theta {
				adj[i*n+j] = true
				adj[j*n+i] = true
			}
		}
	}
	cross := 0
	for i := 0; i < len(a); i++ {
		for j := len(a); j < n; j++ {
			if adj[i*n+j] {
				cross++
			}
			for k := 0; k < n; k++ {
				if adj[i*n+k] && adj[j*n+k] {
					cross++
				}
			}
		}
	}
	return float64(cross) / rockcore.ExpectedCrossLinks(len(a), len(b), c.f)
}
