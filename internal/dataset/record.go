package dataset

import "fmt"

// Missing marks an attribute whose value is absent in a record. The paper
// (Section 3.1.2) handles missing values by omitting the corresponding items
// from the derived transaction.
const Missing = -1

// Attribute describes one categorical attribute: its name and the finite
// domain of values it may take.
type Attribute struct {
	Name   string
	Domain []string
	// Weights, when non-nil, carries one positive weight per domain value —
	// the attribute-value weights of He et al.'s weighted K-Modes measure,
	// consumed by the weighted similarities (sim.WeightedJaccard). A nil
	// Weights means every value of this attribute weighs 1.
	Weights []float64
}

// Schema is the ordered list of categorical attributes of a data set.
type Schema struct {
	Attrs []Attribute
}

// NewSchema builds a schema from attribute name/domain pairs.
func NewSchema(attrs ...Attribute) *Schema { return &Schema{Attrs: attrs} }

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.Attrs) }

// ValueIndex returns the index of value v in the domain of attribute a, or
// Missing if v is not in the domain.
func (s *Schema) ValueIndex(a int, v string) int {
	for i, dv := range s.Attrs[a].Domain {
		if dv == v {
			return i
		}
	}
	return Missing
}

// Record is a single categorical data point: one domain-value index per
// attribute, with Missing for absent values.
type Record []int

// NewRecord returns a record with every attribute missing.
func NewRecord(n int) Record {
	r := make(Record, n)
	for i := range r {
		r[i] = Missing
	}
	return r
}

// IsMissing reports whether attribute a has no value in the record.
func (r Record) IsMissing(a int) bool { return r[a] == Missing }

// MissingPolicy selects how the encoder treats missing attribute values.
type MissingPolicy int

const (
	// OmitMissing is the paper's proposal (Section 3.1.2): a missing value
	// contributes no item, so the attribute is simply absent from the
	// transaction.
	OmitMissing MissingPolicy = iota
	// MissingAsValue treats "missing" as one more domain value with its
	// own item "A.?" — the alternative the paper alludes to ("one of
	// several possible ways to handle them"). Useful when missingness is
	// itself informative (e.g. the original mushroom data's stalk-root).
	MissingAsValue
)

// Encoder converts categorical records into transactions following Section
// 3.1.2 of the paper: for every attribute A and domain value v an item "A.v"
// is introduced, and the transaction for a record contains A.v iff the
// record's value for A is v. Missing values are handled per the
// MissingPolicy (the default omits them).
type Encoder struct {
	schema *Schema
	vocab  *Vocab
	// base[a] is the item id of the first domain value of attribute a, so
	// the item for (a, v) is base[a]+v without a map lookup.
	base    []Item
	missing []Item // per attribute, the "A.?" item (MissingAsValue only)
	policy  MissingPolicy
}

// NewEncoder builds an encoder (and the item vocabulary) for schema with
// the paper's OmitMissing policy.
func NewEncoder(schema *Schema) *Encoder {
	return NewEncoderWithPolicy(schema, OmitMissing)
}

// NewEncoderWithPolicy builds an encoder with an explicit missing-value
// policy.
func NewEncoderWithPolicy(schema *Schema, policy MissingPolicy) *Encoder {
	e := &Encoder{
		schema: schema,
		vocab:  NewVocab(),
		base:   make([]Item, len(schema.Attrs)),
		policy: policy,
	}
	if policy == MissingAsValue {
		e.missing = make([]Item, len(schema.Attrs))
	}
	for a, attr := range schema.Attrs {
		e.base[a] = Item(e.vocab.Len())
		for _, v := range attr.Domain {
			e.vocab.ID(attr.Name + "." + v)
		}
		if policy == MissingAsValue {
			e.missing[a] = e.vocab.ID(attr.Name + ".?")
		}
	}
	return e
}

// Schema returns the schema the encoder was built for.
func (e *Encoder) Schema() *Schema { return e.schema }

// Vocab returns the item vocabulary ("attr.value" names).
func (e *Encoder) Vocab() *Vocab { return e.vocab }

// NumItems returns the total number of attribute=value items.
func (e *Encoder) NumItems() int { return e.vocab.Len() }

// Item returns the item id for value index v of attribute a.
func (e *Encoder) Item(a, v int) Item {
	if v < 0 || v >= len(e.schema.Attrs[a].Domain) {
		panic(fmt.Sprintf("dataset: value index %d out of range for attribute %q", v, e.schema.Attrs[a].Name))
	}
	return e.base[a] + Item(v)
}

// AttrValue is the inverse of Item: it maps an item id back to its
// (attribute index, value index) pair.
func (e *Encoder) AttrValue(it Item) (attr, val int) {
	// Linear scan over attributes; schemas are small (tens of attributes).
	for a := len(e.base) - 1; a >= 0; a-- {
		if it >= e.base[a] {
			return a, int(it - e.base[a])
		}
	}
	panic(fmt.Sprintf("dataset: item %d not produced by this encoder", it))
}

// Encode converts a record into its transaction. Missing values follow the
// encoder's policy: omitted (the paper's Section 3.1.2 proposal) or encoded
// as a dedicated "A.?" item.
func (e *Encoder) Encode(r Record) Transaction {
	if len(r) != len(e.schema.Attrs) {
		panic(fmt.Sprintf("dataset: record has %d attributes, schema has %d", len(r), len(e.schema.Attrs)))
	}
	t := make(Transaction, 0, len(r))
	for a, v := range r {
		if v == Missing {
			if e.policy == MissingAsValue {
				t = append(t, e.missing[a])
			}
			continue
		}
		t = append(t, e.Item(a, v))
	}
	// Items are emitted in increasing attribute order and ids increase
	// with attribute (the "A.?" item is the last of each attribute's
	// block), so t is already sorted.
	return t
}

// EncodeAll converts a slice of records into transactions.
func (e *Encoder) EncodeAll(rs []Record) []Transaction {
	out := make([]Transaction, len(rs))
	for i, r := range rs {
		out[i] = e.Encode(r)
	}
	return out
}

// PairwiseJaccard computes the similarity between two records under the
// paper's time-series rule (Section 3.1.2): only attributes whose values are
// present in *both* records are considered; the per-pair transactions then
// contain one item per common attribute, and their Jaccard coefficient is
// a / (2m - a) where m is the number of common attributes and a the number
// on which the records agree. Returns 0 when the records share no attributes.
func PairwiseJaccard(a, b Record) float64 {
	common, agree := 0, 0
	for i := range a {
		if a[i] == Missing || b[i] == Missing {
			continue
		}
		common++
		if a[i] == b[i] {
			agree++
		}
	}
	if common == 0 {
		return 0
	}
	return float64(agree) / float64(2*common-agree)
}

// BooleanVector converts a record into the dense 0/1 vector representation
// used by the traditional centroid-based baseline (Section 5): one boolean
// dimension per attribute=value pair; missing values leave all of the
// attribute's dimensions at zero.
func (e *Encoder) BooleanVector(r Record) []float64 {
	v := make([]float64, e.NumItems())
	for a, val := range r {
		if val == Missing {
			continue
		}
		v[e.Item(a, val)] = 1
	}
	return v
}

// BooleanVectorTxn converts a transaction over e's items into a dense 0/1
// vector (used when the baseline runs directly on market-basket data).
func BooleanVectorTxn(t Transaction, numItems int) []float64 {
	v := make([]float64, numItems)
	for _, it := range t {
		v[it] = 1
	}
	return v
}
