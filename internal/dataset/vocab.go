package dataset

import "fmt"

// Vocab is a bidirectional mapping between external string item names and
// compact Item identifiers. Identifiers are assigned densely in insertion
// order starting at zero, so they double as slice indices.
type Vocab struct {
	byName map[string]Item
	names  []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{byName: make(map[string]Item)}
}

// ID returns the identifier for name, assigning a fresh one if the name has
// not been seen before.
func (v *Vocab) ID(name string) Item {
	if id, ok := v.byName[name]; ok {
		return id
	}
	id := Item(len(v.names))
	v.byName[name] = id
	v.names = append(v.names, name)
	return id
}

// Lookup returns the identifier for name and whether it is known.
func (v *Vocab) Lookup(name string) (Item, bool) {
	id, ok := v.byName[name]
	return id, ok
}

// Name returns the external name for id. It panics if id was never assigned.
func (v *Vocab) Name(id Item) string {
	if int(id) < 0 || int(id) >= len(v.names) {
		panic(fmt.Sprintf("dataset: vocab id %d out of range [0,%d)", id, len(v.names)))
	}
	return v.names[id]
}

// Len returns the number of distinct names in the vocabulary.
func (v *Vocab) Len() int { return len(v.names) }

// Names returns the names in identifier order. The returned slice is shared;
// callers must not modify it.
func (v *Vocab) Names() []string { return v.names }
