package dataset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewTransactionNormalizes(t *testing.T) {
	tx := NewTransaction(5, 1, 3, 1, 5)
	want := Transaction{1, 3, 5}
	if !tx.Equal(want) {
		t.Fatalf("got %v, want %v", tx, want)
	}
}

func TestTransactionSetOps(t *testing.T) {
	a := NewTransaction(1, 2, 3, 5)
	b := NewTransaction(2, 3, 4, 5)
	if got := a.IntersectLen(b); got != 3 {
		t.Errorf("IntersectLen = %d, want 3", got)
	}
	if got := a.UnionLen(b); got != 5 {
		t.Errorf("UnionLen = %d, want 5", got)
	}
	if got := a.Intersect(b); !got.Equal(NewTransaction(2, 3, 5)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); !got.Equal(NewTransaction(1, 2, 3, 4, 5)) {
		t.Errorf("Union = %v", got)
	}
}

func TestTransactionEmptyOps(t *testing.T) {
	var empty Transaction
	a := NewTransaction(1, 2)
	if empty.IntersectLen(a) != 0 || a.IntersectLen(empty) != 0 {
		t.Error("intersect with empty should be 0")
	}
	if a.UnionLen(empty) != 2 {
		t.Error("union with empty should keep size")
	}
	if !empty.Equal(Transaction{}) {
		t.Error("empty transactions should be equal")
	}
}

func TestTransactionContains(t *testing.T) {
	tx := NewTransaction(2, 4, 6, 8)
	for _, it := range []Item{2, 4, 6, 8} {
		if !tx.Contains(it) {
			t.Errorf("Contains(%d) = false", it)
		}
	}
	for _, it := range []Item{1, 3, 5, 7, 9} {
		if tx.Contains(it) {
			t.Errorf("Contains(%d) = true", it)
		}
	}
}

func TestTransactionString(t *testing.T) {
	if got := NewTransaction(1, 2, 3).String(); got != "{1, 2, 3}" {
		t.Errorf("String = %q", got)
	}
}

// Property: |a ∩ b| + |a ∪ b| == |a| + |b| for all normalized transactions.
func TestInclusionExclusionQuick(t *testing.T) {
	f := func(as, bs []uint8) bool {
		a := fromBytes(as)
		b := fromBytes(bs)
		return a.IntersectLen(b)+a.UnionLen(b) == len(a)+len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersect and Union results are sorted, duplicate-free, and
// consistent with the length functions.
func TestSetOpsConsistentQuick(t *testing.T) {
	f := func(as, bs []uint8) bool {
		a, b := fromBytes(as), fromBytes(bs)
		in, un := a.Intersect(b), a.Union(b)
		if len(in) != a.IntersectLen(b) || len(un) != a.UnionLen(b) {
			return false
		}
		return isNormalized(in) && isNormalized(un)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fromBytes(bs []uint8) Transaction {
	items := make([]Item, len(bs))
	for i, b := range bs {
		items[i] = Item(b % 32)
	}
	return NewTransaction(items...)
}

func isNormalized(t Transaction) bool {
	for i := 1; i < len(t); i++ {
		if t[i] <= t[i-1] {
			return false
		}
	}
	return true
}

func TestVocabRoundTrip(t *testing.T) {
	v := NewVocab()
	a := v.ID("apple")
	b := v.ID("banana")
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if v.ID("apple") != a {
		t.Fatal("repeated ID changed")
	}
	if v.Name(a) != "apple" || v.Name(b) != "banana" {
		t.Fatal("Name round trip failed")
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if id, ok := v.Lookup("banana"); !ok || id != b {
		t.Fatal("Lookup failed")
	}
	if _, ok := v.Lookup("cherry"); ok {
		t.Fatal("Lookup invented a name")
	}
}

func TestVocabNamePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVocab().Name(0)
}

func testSchema() *Schema {
	return NewSchema(
		Attribute{Name: "color", Domain: []string{"red", "green", "blue"}},
		Attribute{Name: "size", Domain: []string{"small", "large"}},
		Attribute{Name: "shape", Domain: []string{"round", "square"}},
	)
}

func TestEncoderItems(t *testing.T) {
	enc := NewEncoder(testSchema())
	if enc.NumItems() != 7 {
		t.Fatalf("NumItems = %d, want 7", enc.NumItems())
	}
	if enc.Vocab().Name(enc.Item(0, 2)) != "color.blue" {
		t.Errorf("item name = %q", enc.Vocab().Name(enc.Item(0, 2)))
	}
	// Round trip attr/value for every item.
	for a, attr := range enc.Schema().Attrs {
		for v := range attr.Domain {
			ga, gv := enc.AttrValue(enc.Item(a, v))
			if ga != a || gv != v {
				t.Errorf("AttrValue(Item(%d,%d)) = (%d,%d)", a, v, ga, gv)
			}
		}
	}
}

func TestEncodeSkipsMissing(t *testing.T) {
	enc := NewEncoder(testSchema())
	rec := Record{0, Missing, 1}
	tx := enc.Encode(rec)
	if len(tx) != 2 {
		t.Fatalf("transaction %v, want 2 items", tx)
	}
	if !isNormalized(tx) {
		t.Fatalf("transaction %v not sorted", tx)
	}
	names := []string{enc.Vocab().Name(tx[0]), enc.Vocab().Name(tx[1])}
	if names[0] != "color.red" || names[1] != "shape.square" {
		t.Errorf("items = %v", names)
	}
}

func TestEncodeAllMatchesEncode(t *testing.T) {
	enc := NewEncoder(testSchema())
	recs := []Record{{0, 0, 0}, {2, 1, 1}, {Missing, Missing, Missing}}
	all := enc.EncodeAll(recs)
	for i, r := range recs {
		if !all[i].Equal(enc.Encode(r)) {
			t.Errorf("EncodeAll[%d] differs", i)
		}
	}
	if len(all[2]) != 0 {
		t.Error("all-missing record should encode to empty transaction")
	}
}

func TestBooleanVector(t *testing.T) {
	enc := NewEncoder(testSchema())
	v := enc.BooleanVector(Record{1, Missing, 0})
	if len(v) != enc.NumItems() {
		t.Fatalf("len = %d", len(v))
	}
	ones := 0
	for _, x := range v {
		if x == 1 {
			ones++
		} else if x != 0 {
			t.Fatalf("non-boolean value %v", x)
		}
	}
	if ones != 2 {
		t.Fatalf("ones = %d, want 2 (one attribute missing)", ones)
	}
	if v[enc.Item(0, 1)] != 1 || v[enc.Item(2, 0)] != 1 {
		t.Error("wrong dimensions set")
	}
}

func TestPairwiseJaccard(t *testing.T) {
	// Identical where both present -> 1 even with missing elsewhere.
	a := Record{0, 1, Missing, 2}
	b := Record{0, 1, 5, Missing}
	if got := PairwiseJaccard(a, b); got != 1 {
		t.Errorf("PairwiseJaccard = %v, want 1", got)
	}
	// Agree on 1 of 2 common attrs: a/(2m-a) = 1/3.
	c := Record{0, 0, Missing, Missing}
	if got := PairwiseJaccard(a, c); got != 1.0/3 {
		t.Errorf("PairwiseJaccard = %v, want 1/3", got)
	}
	// No common attributes -> 0.
	d := Record{Missing, Missing, 1, Missing}
	e := Record{1, 1, Missing, Missing}
	if got := PairwiseJaccard(d, e); got != 0 {
		t.Errorf("PairwiseJaccard = %v, want 0", got)
	}
}

// Property: PairwiseJaccard is symmetric and in [0, 1]; 1 iff all common
// attributes agree (and at least one exists).
func TestPairwiseJaccardQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(10)
		a, b := NewRecord(n), NewRecord(n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) > 0 {
				a[i] = rng.Intn(3)
			}
			if rng.Intn(4) > 0 {
				b[i] = rng.Intn(3)
			}
		}
		x, y := PairwiseJaccard(a, b), PairwiseJaccard(b, a)
		if x != y {
			t.Fatalf("not symmetric: %v vs %v", x, y)
		}
		if x < 0 || x > 1 {
			t.Fatalf("out of range: %v", x)
		}
	}
}

func TestSchemaValueIndex(t *testing.T) {
	s := testSchema()
	if s.ValueIndex(0, "green") != 1 {
		t.Error("ValueIndex(color, green) != 1")
	}
	if s.ValueIndex(0, "purple") != Missing {
		t.Error("unknown value should map to Missing")
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(bs []uint8) bool {
		tx := fromBytes(bs)
		before := tx.Clone()
		tx.Normalize()
		return reflect.DeepEqual(before, tx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := NewTransaction(1, 2, 3)
	b := a.Clone()
	b[0] = 99
	if a[0] == 99 {
		t.Fatal("Clone shares storage")
	}
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
}
