// Package dataset defines the data model shared by every component of the
// ROCK reproduction: transactions (sets of items), categorical records, the
// record→transaction mapping of Section 3.1.2 of the paper, and vocabularies
// that translate between external string names and the compact integer item
// identifiers used internally.
package dataset

import (
	"fmt"
	"sort"
	"strings"
)

// Item is a compact integer identifier for a market-basket item or for an
// attribute=value pair produced by the categorical encoding.
type Item int32

// Transaction is a set of items, stored sorted and without duplicates.
// The zero value is the empty transaction.
type Transaction []Item

// NewTransaction builds a normalized (sorted, deduplicated) transaction from
// the given items. The input slice is not modified.
func NewTransaction(items ...Item) Transaction {
	t := make(Transaction, len(items))
	copy(t, items)
	t.Normalize()
	return t
}

// Normalize sorts the transaction and removes duplicate items in place.
func (t *Transaction) Normalize() {
	s := *t
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, it := range s {
		if i == 0 || it != s[i-1] {
			out = append(out, it)
		}
	}
	*t = out
}

// Len returns the number of items in the transaction.
func (t Transaction) Len() int { return len(t) }

// IsNormalized reports whether the transaction is sorted and duplicate-free
// — the form Normalize produces and the form the merge intersections (and
// the indexed similarity join) rely on.
func (t Transaction) IsNormalized() bool {
	for i := 1; i < len(t); i++ {
		if t[i] <= t[i-1] {
			return false
		}
	}
	return true
}

// Contains reports whether the transaction contains item v.
func (t Transaction) Contains(v Item) bool {
	i := sort.Search(len(t), func(i int) bool { return t[i] >= v })
	return i < len(t) && t[i] == v
}

// IntersectLen returns |t ∩ u| for two normalized transactions.
func (t Transaction) IntersectLen(u Transaction) int {
	i, j, n := 0, 0, 0
	for i < len(t) && j < len(u) {
		switch {
		case t[i] < u[j]:
			i++
		case t[i] > u[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// UnionLen returns |t ∪ u| for two normalized transactions.
func (t Transaction) UnionLen(u Transaction) int {
	return len(t) + len(u) - t.IntersectLen(u)
}

// Intersect returns t ∩ u as a new transaction.
func (t Transaction) Intersect(u Transaction) Transaction {
	out := make(Transaction, 0, min(len(t), len(u)))
	i, j := 0, 0
	for i < len(t) && j < len(u) {
		switch {
		case t[i] < u[j]:
			i++
		case t[i] > u[j]:
			j++
		default:
			out = append(out, t[i])
			i++
			j++
		}
	}
	return out
}

// Union returns t ∪ u as a new transaction.
func (t Transaction) Union(u Transaction) Transaction {
	out := make(Transaction, 0, len(t)+len(u))
	i, j := 0, 0
	for i < len(t) && j < len(u) {
		switch {
		case t[i] < u[j]:
			out = append(out, t[i])
			i++
		case t[i] > u[j]:
			out = append(out, u[j])
			j++
		default:
			out = append(out, t[i])
			i++
			j++
		}
	}
	out = append(out, t[i:]...)
	out = append(out, u[j:]...)
	return out
}

// Equal reports whether two normalized transactions contain the same items.
func (t Transaction) Equal(u Transaction) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the transaction.
func (t Transaction) Clone() Transaction {
	out := make(Transaction, len(t))
	copy(out, t)
	return out
}

// String renders the transaction as "{1, 2, 3}" for debugging and examples.
func (t Transaction) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, it := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", it)
	}
	b.WriteByte('}')
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
