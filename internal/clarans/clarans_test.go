package clarans

import (
	"math"
	"math/rand"
	"testing"

	"rock/internal/dataset"
	"rock/internal/sim"
)

func lineDist(pos []float64) func(i, j int) float64 {
	return func(i, j int) float64 { return math.Abs(pos[i] - pos[j]) }
}

func TestClaransSeparatesLineClusters(t *testing.T) {
	var pos []float64
	var labels []int
	rng := rand.New(rand.NewSource(1))
	for c, ctr := range []float64{0, 100, 200} {
		for i := 0; i < 20; i++ {
			pos = append(pos, ctr+rng.Float64()*5)
			labels = append(labels, c)
		}
	}
	res, err := Cluster(len(pos), lineDist(pos), Config{K: 3, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters() {
		l := labels[c[0]]
		for _, p := range c {
			if labels[p] != l {
				t.Fatal("mixed cluster")
			}
		}
	}
	// Medoids are real points, one per blob.
	seen := map[int]bool{}
	for _, m := range res.Medoids {
		seen[labels[m]] = true
	}
	if len(seen) != 3 {
		t.Fatalf("medoids cover %d blobs", len(seen))
	}
}

func TestClaransCostIsOptimalOnTiny(t *testing.T) {
	// Four points, K=2: optimum pairs {0,1} and {2,3} with cost 2.
	pos := []float64{0, 1, 10, 11}
	rng := rand.New(rand.NewSource(2))
	res, err := Cluster(len(pos), lineDist(pos), Config{K: 2, NumLocal: 4, MaxNeighbor: 50, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 2 {
		t.Fatalf("cost = %v, want 2", res.Cost)
	}
}

func TestClaransOnJaccard(t *testing.T) {
	txns := []dataset.Transaction{
		dataset.NewTransaction(1, 2, 3),
		dataset.NewTransaction(1, 2, 4),
		dataset.NewTransaction(1, 3, 4),
		dataset.NewTransaction(8, 9, 10),
		dataset.NewTransaction(8, 9, 11),
		dataset.NewTransaction(8, 10, 11),
	}
	d := func(i, j int) float64 { return 1 - sim.Jaccard(txns[i], txns[j]) }
	res, err := Cluster(len(txns), d, Config{K: 2, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	cl := res.Clusters()
	if len(cl[0]) != 3 || len(cl[1]) != 3 {
		t.Fatalf("clusters = %v", cl)
	}
	in := map[int]int{}
	for c, members := range cl {
		for _, p := range members {
			in[p] = c
		}
	}
	if in[0] != in[1] || in[0] != in[2] || in[3] != in[4] || in[3] != in[5] || in[0] == in[3] {
		t.Fatalf("wrong split: %v", cl)
	}
}

func TestClaransValidation(t *testing.T) {
	if _, err := Cluster(3, nil, Config{K: 0, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Cluster(3, nil, Config{K: 2}); err == nil {
		t.Error("nil rng accepted")
	}
	res, err := Cluster(0, nil, Config{K: 2, Rng: rand.New(rand.NewSource(1))})
	if err != nil || len(res.Medoids) != 0 {
		t.Errorf("empty input: %v %v", res, err)
	}
}

func TestClaransDeterministicGivenSeed(t *testing.T) {
	pos := make([]float64, 50)
	rng := rand.New(rand.NewSource(4))
	for i := range pos {
		pos[i] = rng.Float64() * 100
	}
	r1, _ := Cluster(len(pos), lineDist(pos), Config{K: 4, Rng: rand.New(rand.NewSource(5))})
	r2, _ := Cluster(len(pos), lineDist(pos), Config{K: 4, Rng: rand.New(rand.NewSource(5))})
	if r1.Cost != r2.Cost {
		t.Fatal("not deterministic")
	}
}
