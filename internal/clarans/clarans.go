// Package clarans implements CLARANS (Ng & Han, VLDB 1994), the randomized
// k-medoids search Section 2 of the ROCK paper cites: "CLARANS employs a
// randomized search to find the k best cluster medoids". Because medoids
// are actual points and the cost is a sum of point-to-medoid
// dissimilarities, CLARANS runs on arbitrary dissimilarities — including
// 1 - Jaccard on categorical data — making it a meaningful baseline here.
package clarans

import (
	"errors"
	"math"
	"math/rand"
)

// Config controls the randomized search.
type Config struct {
	// K is the number of medoids.
	K int
	// NumLocal is the number of local searches from random restarts
	// (the paper's numlocal, typically 2).
	NumLocal int
	// MaxNeighbor is the number of random swap neighbors examined without
	// improvement before declaring a local optimum (the paper's
	// maxneighbor).
	MaxNeighbor int
	// Rng drives the search; required.
	Rng *rand.Rand
}

// Result is the outcome of a CLARANS run.
type Result struct {
	// Medoids are the selected representative points.
	Medoids []int
	// Assign maps each point to the index (into Medoids) of its medoid.
	Assign []int
	// Cost is the total dissimilarity of points to their medoids.
	Cost float64
}

// Cluster searches for K medoids minimizing total dissimilarity.
func Cluster(n int, dist func(i, j int) float64, cfg Config) (*Result, error) {
	if cfg.K <= 0 {
		return nil, errors.New("clarans: K must be positive")
	}
	if cfg.Rng == nil {
		return nil, errors.New("clarans: Rng is required")
	}
	if n == 0 {
		return &Result{}, nil
	}
	k := cfg.K
	if k > n {
		k = n
	}
	numLocal := cfg.NumLocal
	if numLocal <= 0 {
		numLocal = 2
	}
	maxNeighbor := cfg.MaxNeighbor
	if maxNeighbor <= 0 {
		// The paper suggests max(250, 1.25% of k(n-k)).
		maxNeighbor = k * (n - k) / 80
		if maxNeighbor < 250 {
			maxNeighbor = 250
		}
	}

	var best *Result
	for local := 0; local < numLocal; local++ {
		cur := randomMedoids(n, k, cfg.Rng)
		curCost, curAssign := evaluate(n, dist, cur)
		for tries := 0; tries < maxNeighbor; {
			mi := cfg.Rng.Intn(k)
			cand := cfg.Rng.Intn(n)
			if contains(cur, cand) {
				continue
			}
			tries++
			old := cur[mi]
			cur[mi] = cand
			newCost, newAssign := evaluate(n, dist, cur)
			if newCost < curCost {
				curCost, curAssign = newCost, newAssign
				tries = 0 // restart the neighbor count at the new node
			} else {
				cur[mi] = old
			}
		}
		if best == nil || curCost < best.Cost {
			best = &Result{
				Medoids: append([]int(nil), cur...),
				Assign:  curAssign,
				Cost:    curCost,
			}
		}
	}
	return best, nil
}

func randomMedoids(n, k int, rng *rand.Rand) []int {
	perm := rng.Perm(n)
	return append([]int(nil), perm[:k]...)
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// evaluate assigns every point to its nearest medoid and totals the cost.
func evaluate(n int, dist func(i, j int) float64, medoids []int) (float64, []int) {
	assign := make([]int, n)
	var cost float64
	for p := 0; p < n; p++ {
		best, bestD := 0, math.Inf(1)
		for mi, m := range medoids {
			if d := dist(p, m); d < bestD {
				best, bestD = mi, d
			}
		}
		assign[p] = best
		cost += bestD
	}
	return cost, assign
}

// Clusters materializes member lists from the assignment.
func (r *Result) Clusters() [][]int {
	out := make([][]int, len(r.Medoids))
	for p, m := range r.Assign {
		out[m] = append(out[m], p)
	}
	return out
}
