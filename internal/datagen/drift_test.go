package datagen

import (
	"math/rand"
	"testing"

	"rock/internal/dataset"
)

func driftConfig(every int, frac float64) DriftConfig {
	return DriftConfig{
		Basket:     ScaledBasketConfig(100),
		DriftEvery: every,
		DriftFrac:  frac,
	}
}

// TestDriftStreamStationary: with DriftEvery 0 the stream never rotates and
// draws only from the initial templates, with labels matching the template
// the transaction was drawn from.
func TestDriftStreamStationary(t *testing.T) {
	s := NewDriftStream(driftConfig(0, 0.5), rand.New(rand.NewSource(1)))
	initial := make([]dataset.Transaction, len(s.Defining()))
	for i, d := range s.Defining() {
		initial[i] = d.Clone()
	}
	for i := 0; i < 2000; i++ {
		txn, label := s.Next()
		if !txn.IsNormalized() || len(txn) == 0 {
			t.Fatalf("draw %d: bad transaction %v", i, txn)
		}
		if label != OutlierLabel {
			if label < 0 || label >= len(initial) {
				t.Fatalf("draw %d: label %d out of range", i, label)
			}
			if txn.IntersectLen(initial[label]) != len(txn) {
				t.Fatalf("draw %d: %v not within template %d %v", i, txn, label, initial[label])
			}
		}
	}
	if s.Rotations() != 0 {
		t.Fatalf("stationary stream rotated %d times", s.Rotations())
	}
}

// TestDriftStreamRotates: rotations happen on schedule, replace the right
// number of items with fresh ids, and post-drift draws use the new
// vocabulary.
func TestDriftStreamRotates(t *testing.T) {
	const every = 500
	s := NewDriftStream(driftConfig(every, 0.5), rand.New(rand.NewSource(2)))
	before := make([]dataset.Transaction, len(s.Defining()))
	for i, d := range s.Defining() {
		before[i] = d.Clone()
	}
	itemsBefore := s.NumItems()
	for i := 0; i < every; i++ {
		s.Next()
	}
	if s.Rotations() != 0 {
		t.Fatalf("rotated before the boundary: %d", s.Rotations())
	}
	s.Next() // crosses the boundary
	if s.Rotations() != 1 {
		t.Fatalf("want 1 rotation after %d draws, got %d", every+1, s.Rotations())
	}
	if s.NumItems() <= itemsBefore {
		t.Fatalf("rotation introduced no fresh items: %d -> %d", itemsBefore, s.NumItems())
	}
	for ci, d := range s.Defining() {
		if len(d) != len(before[ci]) {
			t.Fatalf("cluster %d template size changed: %d -> %d", ci, len(before[ci]), len(d))
		}
		kept := 0
		for _, it := range d {
			if before[ci].Contains(it) {
				kept++
			}
		}
		replaced := len(d) - kept
		want := (len(d) + 1) / 2 // ceil(0.5 · n)
		if replaced != want {
			t.Fatalf("cluster %d: %d items replaced, want %d", ci, replaced, want)
		}
		// Fresh ids exceed every pre-rotation id, so after Normalize they
		// occupy the tail of the template.
		for _, it := range d[kept:] {
			if int(it) < itemsBefore {
				t.Fatalf("cluster %d: replacement item %d is not fresh", ci, it)
			}
		}
	}
	// Labeled draws after the rotation stay within the rotated template.
	for i := 0; i < 1000; i++ {
		txn, label := s.Next()
		if label != OutlierLabel && txn.IntersectLen(s.Defining()[label]) != len(txn) {
			t.Fatalf("post-drift draw outside rotated template: %v vs %v", txn, s.Defining()[label])
		}
	}
}

// TestDriftStreamOutlierFraction: outlier draws appear at roughly the
// configured rate.
func TestDriftStreamOutlierFraction(t *testing.T) {
	cfg := driftConfig(0, 0)
	s := NewDriftStream(cfg, rand.New(rand.NewSource(3)))
	total := cfg.Basket.Outliers
	for _, sz := range cfg.Basket.ClusterSizes {
		total += sz
	}
	wantFrac := float64(cfg.Basket.Outliers) / float64(total)
	const n = 20000
	out := 0
	for i := 0; i < n; i++ {
		if _, label := s.Next(); label == OutlierLabel {
			out++
		}
	}
	got := float64(out) / n
	if got < wantFrac/2 || got > wantFrac*2 {
		t.Fatalf("outlier fraction %.4f, configured %.4f", got, wantFrac)
	}
}
