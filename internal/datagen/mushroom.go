package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"rock/internal/dataset"
)

// Edibility labels for the mushroom data set.
const (
	Edible    = 0
	Poisonous = 1
)

// MushroomClassNames index the edibility labels.
var MushroomClassNames = []string{"Edible", "Poisonous"}

// mushroomAttrs is the UCI mushroom schema: 22 categorical attributes.
var mushroomAttrs = []dataset.Attribute{
	{Name: "cap-shape", Domain: []string{"bell", "conical", "convex", "flat", "knobbed", "sunken"}},
	{Name: "cap-surface", Domain: []string{"fibrous", "grooves", "scaly", "smooth"}},
	{Name: "cap-color", Domain: []string{"brown", "buff", "cinnamon", "gray", "green", "pink", "purple", "red", "white", "yellow"}},
	{Name: "bruises", Domain: []string{"bruises", "no"}},
	{Name: "odor", Domain: []string{"almond", "anise", "creosote", "fishy", "foul", "musty", "none", "pungent", "spicy"}},
	{Name: "gill-attachment", Domain: []string{"attached", "descending", "free", "notched"}},
	{Name: "gill-spacing", Domain: []string{"close", "crowded", "distant"}},
	{Name: "gill-size", Domain: []string{"broad", "narrow"}},
	{Name: "gill-color", Domain: []string{"black", "brown", "buff", "chocolate", "gray", "green", "orange", "pink", "purple", "red", "white", "yellow"}},
	{Name: "stalk-shape", Domain: []string{"enlarging", "tapering"}},
	{Name: "stalk-root", Domain: []string{"bulbous", "club", "cup", "equal", "rhizomorphs", "rooted"}},
	{Name: "stalk-surface-above-ring", Domain: []string{"fibrous", "scaly", "silky", "smooth"}},
	{Name: "stalk-surface-below-ring", Domain: []string{"fibrous", "scaly", "silky", "smooth"}},
	{Name: "stalk-color-above-ring", Domain: []string{"brown", "buff", "cinnamon", "gray", "orange", "pink", "red", "white", "yellow"}},
	{Name: "stalk-color-below-ring", Domain: []string{"brown", "buff", "cinnamon", "gray", "orange", "pink", "red", "white", "yellow"}},
	{Name: "veil-type", Domain: []string{"partial", "universal"}},
	{Name: "veil-color", Domain: []string{"brown", "orange", "white", "yellow"}},
	{Name: "ring-number", Domain: []string{"none", "one", "two"}},
	{Name: "ring-type", Domain: []string{"cobwebby", "evanescent", "flaring", "large", "none", "pendant", "sheathing", "zone"}},
	{Name: "spore-print-color", Domain: []string{"black", "brown", "buff", "chocolate", "green", "orange", "purple", "white", "yellow"}},
	{Name: "population", Domain: []string{"abundant", "clustered", "numerous", "scattered", "several", "solitary"}},
	{Name: "habitat", Domain: []string{"grasses", "leaves", "meadows", "paths", "urban", "waste", "woods"}},
}

// Attribute indices used by the generator's constraints.
const (
	attrOdor     = 4
	attrVeilType = 15
)

// edibleOdors and poisonousOdors reproduce the paper's observation that the
// odor attribute alone separates the classes: "none, anise or almond for
// edible mushrooms, while for poisonous mushrooms ... foul, fishy or spicy"
// (plus the remaining poisonous odors of the original data).
var (
	edibleOdors    = []string{"none", "anise", "almond"}
	poisonousOdors = []string{"foul", "fishy", "spicy", "pungent", "creosote", "musty"}
)

// mushroomComponent describes one latent species block: its size (a product
// of small factors, matching the combinatorial structure of the original
// Audubon-guide expansion), its edibility, and the factorization that
// determines how many attributes vary freely and over how many values.
type mushroomComponent struct {
	size    int
	class   int
	factors []int
}

// mushroomComponents reproduces the cluster size distribution the paper's
// Table 3 reports for ROCK (the mixed cluster 15 is modeled as two highly
// similar components of 32 edible and 72 poisonous mushrooms). Sizes sum to
// 8124 with 4208 edible and 3916 poisonous, matching Table 1.
// Factors are kept small (2s and 3s) so that large components vary over
// many attributes: their within-cluster spread then exceeds the
// between-cluster separation in boolean-encoded Euclidean space, which is
// what defeats the centroid baseline on the real data (the paper's "ripple
// effect") while leaving the link structure intact for ROCK.
var mushroomComponents = []mushroomComponent{
	{96, Edible, []int{2, 2, 2, 2, 2, 3}},
	{256, Poisonous, []int{2, 2, 2, 2, 2, 2, 2, 2}},
	{704, Edible, []int{2, 2, 2, 2, 2, 2, 11}},
	{96, Edible, []int{3, 2, 2, 2, 2, 2}},
	{768, Edible, []int{2, 2, 2, 2, 2, 2, 2, 2, 3}},
	{192, Poisonous, []int{2, 2, 2, 2, 2, 2, 3}},
	{1728, Edible, []int{2, 2, 2, 2, 2, 2, 3, 3, 3}},
	{32, Poisonous, []int{2, 2, 2, 2, 2}},
	{1296, Poisonous, []int{2, 2, 2, 2, 3, 3, 3, 3}},
	{8, Poisonous, []int{2, 2, 2}},
	{48, Edible, []int{2, 2, 2, 2, 3}},
	{48, Edible, []int{3, 2, 2, 2, 2}},
	{288, Poisonous, []int{2, 2, 2, 2, 2, 3, 3}},
	{192, Edible, []int{3, 2, 2, 2, 2, 2, 2}},
	{32, Edible, []int{2, 2, 2, 2, 2}},
	{72, Poisonous, []int{2, 2, 2, 3, 3}},
	{1728, Poisonous, []int{3, 2, 2, 2, 2, 2, 2, 3, 3}},
	{288, Edible, []int{3, 3, 2, 2, 2, 2, 2}},
	{8, Poisonous, []int{2, 2, 2}},
	{192, Edible, []int{2, 3, 2, 2, 2, 2, 2}},
	{16, Edible, []int{2, 2, 2, 2}},
	{36, Poisonous, []int{3, 3, 2, 2}},
}

// MushroomConfig parameterizes the mushroom generator.
type MushroomConfig struct {
	// MissingRate is the per-attribute probability of a missing value
	// ("very few" in the original).
	MissingRate float64
	// MinSeparation is the minimum number of attributes on which every
	// pair of components is guaranteed to disagree; it keeps latent
	// components from collapsing into each other at theta = 0.8 while
	// still letting clusters share many attribute values ("clusters are
	// not well-separated", Section 5.2).
	MinSeparation int
	// NoiseAttrs and NoiseValues add per-record environmental variation:
	// each component draws NoiseAttrs extra attributes iid uniform over a
	// small subset of NoiseValues values (outside the combinatorial
	// product). This inflates within-cluster Euclidean spread relative to
	// the between-cluster separation — the regime in which the paper's
	// centroid baseline degrades while links remain intact.
	NoiseAttrs, NoiseValues int
	// SlackFactors appends extra binary free attributes to every
	// component and samples the component's records as a random subset of
	// the enlarged Cartesian product (density 1/2^SlackFactors) instead
	// of enumerating a full product. Ragged blocks raise within-cluster
	// nearest-neighbor distances toward the between-cluster separation —
	// the entangled regime in which centroid clustering starts gluing
	// clusters across classes — while leaving the neighbor graph dense
	// enough for links.
	SlackFactors int
}

// DefaultMushroomConfig returns the reference parameters.
func DefaultMushroomConfig() MushroomConfig {
	return MushroomConfig{MissingRate: 0.001, MinSeparation: 2, NoiseAttrs: 0, NoiseValues: 2, SlackFactors: 1}
}

// MushroomData is a generated mushroom data set with ground truth.
type MushroomData struct {
	Schema  *dataset.Schema
	Records []dataset.Record
	// Labels holds Edible or Poisonous per record.
	Labels []int
	// Components holds each record's latent species block.
	Components []int
	// NumComponents is the number of latent blocks.
	NumComponents int
}

// componentSpec is the realized description of one component: per attribute
// either a fixed value index or a list of free value indices.
type componentSpec struct {
	fixed [][]int // per attribute: the value subset (len 1 = fixed)
	noise []bool  // attrs drawn iid from their subset instead of the product
}

// Mushroom generates the 8124-record stand-in for the UCI mushroom data.
// Each latent component fixes most attributes to component-specific values
// (drawn with heavy overlap across components, so clusters share values and
// are not well-separated) and varies a few attributes over small value
// subsets, enumerating their full Cartesian product — the same block
// structure that makes the original data clusterable at theta = 0.8.
func Mushroom(cfg MushroomConfig, rng *rand.Rand) *MushroomData {
	schema := dataset.NewSchema(mushroomAttrs...)
	specs := buildMushroomSpecs(cfg, rng)

	d := &MushroomData{Schema: schema, NumComponents: len(specs)}
	for ci, comp := range mushroomComponents {
		spec := specs[ci]
		// The component's cells are a uniform sample of the Cartesian
		// product of its free subsets (the whole product when the slack
		// is zero), enumerated in mixed-radix order per cell index.
		product := 1
		for a := range mushroomAttrs {
			if len(spec.fixed[a]) > 1 && !spec.noise[a] {
				product *= len(spec.fixed[a])
			}
		}
		cells := rng.Perm(product)[:comp.size]
		for _, cell := range cells {
			rec := dataset.NewRecord(len(mushroomAttrs))
			x := cell
			for a := range mushroomAttrs {
				sub := spec.fixed[a]
				v := sub[0]
				if len(sub) > 1 {
					if spec.noise[a] {
						v = sub[rng.Intn(len(sub))]
					} else {
						v = sub[x%len(sub)]
						x /= len(sub)
					}
				}
				if rng.Float64() < cfg.MissingRate {
					continue
				}
				rec[a] = v
			}
			d.Records = append(d.Records, rec)
			d.Labels = append(d.Labels, comp.class)
			d.Components = append(d.Components, ci)
		}
	}
	rng.Shuffle(len(d.Records), func(i, j int) {
		d.Records[i], d.Records[j] = d.Records[j], d.Records[i]
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
		d.Components[i], d.Components[j] = d.Components[j], d.Components[i]
	})
	return d
}

// buildMushroomSpecs realizes the component table: free attributes are
// assigned per factor, fixed attributes drawn with cross-component overlap,
// and pairwise separation repaired until every component pair is guaranteed
// to disagree on at least MinSeparation attributes.
func buildMushroomSpecs(cfg MushroomConfig, rng *rand.Rand) []componentSpec {
	specs := make([]componentSpec, len(mushroomComponents))
	for ci := range mushroomComponents {
		specs[ci] = drawMushroomSpec(ci, cfg, rng)
	}
	// Repair pass: while some pair is under-separated, redraw the later
	// component's fixed values. Bounded to keep generation total.
	for pass := 0; pass < 100; pass++ {
		twinMixedCluster(specs)
		ok := true
		for i := 0; i < len(specs) && ok; i++ {
			for j := i + 1; j < len(specs); j++ {
				// The paired halves of the paper's mixed cluster 15 are
				// intentionally nearly identical; exempt them.
				if i == 14 && j == 15 {
					continue
				}
				if separation(specs[i], specs[j]) < cfg.MinSeparation {
					specs[j] = drawMushroomSpec(j, cfg, rng)
					ok = false
					break
				}
			}
		}
		if ok {
			return specs
		}
	}
	panic("datagen: could not separate mushroom components; loosen MinSeparation")
}

// twinMixedCluster makes components 14 (32 edible) and 15 (72 poisonous) —
// the two halves of the paper's mixed cluster 15 — agree on every fixed
// attribute except odor, so that ROCK plausibly merges them into one impure
// cluster as the paper observed.
func twinMixedCluster(specs []componentSpec) {
	a14, a15 := specs[14], specs[15]
	for a := range a15.fixed {
		if a == attrOdor {
			continue
		}
		if len(a15.fixed[a]) == 1 && len(a14.fixed[a]) == 1 {
			a15.fixed[a] = a14.fixed[a]
		}
	}
}

// drawMushroomSpec realizes one component: factors claim free attributes
// with big enough domains; everything else is fixed, with common values
// favored so components overlap.
func drawMushroomSpec(ci int, cfg MushroomConfig, rng *rand.Rand) componentSpec {
	comp := mushroomComponents[ci]
	spec := componentSpec{
		fixed: make([][]int, len(mushroomAttrs)),
		noise: make([]bool, len(mushroomAttrs)),
	}

	// Candidate free attributes, largest domains first so big factors
	// always find a home. odor and veil-type never vary.
	type cand struct{ attr, domain int }
	var cands []cand
	for a, at := range mushroomAttrs {
		if a == attrOdor || a == attrVeilType {
			continue
		}
		cands = append(cands, cand{a, len(at.Domain)})
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].domain > cands[j].domain })

	used := make(map[int]bool)
	factors := append([]int(nil), comp.factors...)
	for s := 0; s < cfg.SlackFactors; s++ {
		factors = append(factors, 2)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(factors)))
	for _, f := range factors {
		placed := false
		// Walk candidates from the smallest domain that still fits, so
		// huge domains stay available for the factor 11.
		for k := len(cands) - 1; k >= 0; k-- {
			c := cands[k]
			if used[c.attr] || c.domain < f {
				continue
			}
			used[c.attr] = true
			spec.fixed[c.attr] = pickValues(c.domain, f, rng)
			placed = true
			break
		}
		if !placed {
			panic(fmt.Sprintf("datagen: no attribute fits factor %d of component %d", f, ci))
		}
	}

	// Noise attributes: iid environmental variation outside the product.
	for placed := 0; placed < cfg.NoiseAttrs; {
		c := cands[rng.Intn(len(cands))]
		if used[c.attr] || c.domain < cfg.NoiseValues {
			continue
		}
		used[c.attr] = true
		spec.fixed[c.attr] = pickValues(c.domain, cfg.NoiseValues, rng)
		spec.noise[c.attr] = true
		placed++
	}

	schemaDomain := func(a int) []string { return mushroomAttrs[a].Domain }
	for a := range mushroomAttrs {
		if spec.fixed[a] != nil {
			continue
		}
		switch a {
		case attrOdor:
			pool := edibleOdors
			if comp.class == Poisonous {
				pool = poisonousOdors
			}
			name := pool[rng.Intn(len(pool))]
			spec.fixed[a] = []int{domainIndex(schemaDomain(a), name)}
		case attrVeilType:
			spec.fixed[a] = []int{0} // always partial, as in the original
		default:
			// Heavily skewed draw favoring early domain values, so
			// components share most fixed values and clusters are not
			// well-separated (as in the original data, where the paper
			// notes "every pair of clusters generally have some common
			// values for the attributes").
			d := len(schemaDomain(a))
			v := 0
			for v < d-1 && rng.Float64() > 0.72 {
				v++
			}
			spec.fixed[a] = []int{v}
		}
	}
	return spec
}

// pickValues selects f distinct value indices from a domain of size d.
func pickValues(d, f int, rng *rand.Rand) []int {
	perm := rng.Perm(d)[:f]
	sort.Ints(perm)
	return perm
}

// separation counts the attributes on which two components are guaranteed to
// disagree: both fixed with different values, or value subsets that do not
// intersect.
func separation(a, b componentSpec) int {
	s := 0
	for i := range a.fixed {
		if !intersects(a.fixed[i], b.fixed[i]) {
			s++
		}
	}
	return s
}

func intersects(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

func domainIndex(domain []string, name string) int {
	for i, v := range domain {
		if v == name {
			return i
		}
	}
	panic("datagen: value " + name + " not in domain")
}
