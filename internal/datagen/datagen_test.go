package datagen

import (
	"math"
	"math/rand"
	"testing"

	"rock/internal/dataset"
	"rock/internal/timeseries"
)

func TestBasketShapeMatchesTable5(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Basket(DefaultBasketConfig(), rng)
	if got, want := len(d.Txns), 114586; got != want {
		t.Errorf("transactions = %d, want %d (Table 5)", got, want)
	}
	counts := make(map[int]int)
	for _, l := range d.Labels {
		counts[l]++
	}
	if counts[OutlierLabel] != 5456 {
		t.Errorf("outliers = %d, want 5456", counts[OutlierLabel])
	}
	wantSizes := []int{9736, 13029, 14832, 10893, 13022, 7391, 8564, 11973, 14279, 5411}
	for c, want := range wantSizes {
		if counts[c] != want {
			t.Errorf("cluster %d size = %d, want %d", c+1, counts[c], want)
		}
	}
	wantItems := []int{19, 20, 19, 19, 22, 19, 19, 21, 22, 19}
	for c, want := range wantItems {
		if got := len(d.Defining[c]); got != want {
			t.Errorf("cluster %d defining items = %d, want %d", c+1, got, want)
		}
	}
}

func TestBasketTransactionSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Basket(ScaledBasketConfig(20), rng)
	// "98% of transactions have sizes between 11 and 19" (Section 5.3).
	in, total := 0, 0
	var sum float64
	for _, tx := range d.Txns {
		total++
		sum += float64(len(tx))
		if len(tx) >= 11 && len(tx) <= 19 {
			in++
		}
	}
	mean := sum / float64(total)
	if mean < 14 || mean > 16 {
		t.Errorf("mean transaction size = %.2f, want ~15", mean)
	}
	if frac := float64(in) / float64(total); frac < 0.93 {
		t.Errorf("only %.1f%% of sizes in [11,19], want ~98%%", 100*frac)
	}
}

func TestBasketTransactionsDrawnFromDefiningItems(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := Basket(ScaledBasketConfig(50), rng)
	for i, tx := range d.Txns {
		l := d.Labels[i]
		if l == OutlierLabel {
			continue
		}
		for _, it := range tx {
			if !d.Defining[l].Contains(it) {
				t.Fatalf("transaction %d (cluster %d) contains item %d outside its defining set", i, l, it)
			}
		}
	}
}

func TestBasketSharedItemsFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := Basket(DefaultBasketConfig(), rng)
	// "Roughly 40% of the items that define a cluster are common with
	// items for other clusters."
	for c, def := range d.Defining {
		shared := 0
		for _, it := range def {
			for o, other := range d.Defining {
				if o != c && other.Contains(it) {
					shared++
					break
				}
			}
		}
		frac := float64(shared) / float64(len(def))
		if frac < 0.25 || frac > 0.55 {
			t.Errorf("cluster %d shared-item fraction = %.2f, want ~0.4", c+1, frac)
		}
	}
}

func TestVotesShapeMatchesTable1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Votes(DefaultVotesConfig(), rng)
	if len(d.Records) != 435 {
		t.Errorf("records = %d, want 435", len(d.Records))
	}
	if d.Schema.NumAttrs() != 16 {
		t.Errorf("attributes = %d, want 16", d.Schema.NumAttrs())
	}
	rep, dem := 0, 0
	for _, l := range d.Labels {
		switch l {
		case Republican:
			rep++
		case Democrat:
			dem++
		default:
			t.Fatalf("unexpected label %d", l)
		}
	}
	if rep != 168 || dem != 267 {
		t.Errorf("party counts = %d/%d, want 168/267", rep, dem)
	}
}

func TestVotesMajorityPositionsFollowTable7(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := Votes(DefaultVotesConfig(), rng)
	// On physician-fee-freeze the Republican majority votes Yes and the
	// Democrat majority No; on aid-to-nicaraguan-contras the reverse.
	check := func(attrName string, repYes bool) {
		a := -1
		for i, at := range d.Schema.Attrs {
			if at.Name == attrName {
				a = i
			}
		}
		if a < 0 {
			t.Fatalf("attribute %s missing", attrName)
		}
		var repY, repN, demY, demN int
		for i, r := range d.Records {
			if r[a] == dataset.Missing {
				continue
			}
			if d.Labels[i] == Republican {
				if r[a] == 1 {
					repY++
				} else {
					repN++
				}
			} else {
				if r[a] == 1 {
					demY++
				} else {
					demN++
				}
			}
		}
		if (repY > repN) != repYes {
			t.Errorf("%s: Republican majority Yes=%v, want %v", attrName, repY > repN, repYes)
		}
		if (demY > demN) == repYes {
			t.Errorf("%s: Democrat majority should oppose the Republican one", attrName)
		}
	}
	check("physician-fee-freeze", true)
	check("aid-to-nicaraguan-contras", false)
}

func TestMushroomShapeMatchesTable1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Mushroom(DefaultMushroomConfig(), rng)
	if len(d.Records) != 8124 {
		t.Errorf("records = %d, want 8124", len(d.Records))
	}
	if d.Schema.NumAttrs() != 22 {
		t.Errorf("attributes = %d, want 22", d.Schema.NumAttrs())
	}
	e, p := 0, 0
	for _, l := range d.Labels {
		if l == Edible {
			e++
		} else {
			p++
		}
	}
	if e != 4208 || p != 3916 {
		t.Errorf("edible/poisonous = %d/%d, want 4208/3916", e, p)
	}
	if d.NumComponents != len(mushroomComponents) {
		t.Errorf("components = %d, want %d", d.NumComponents, len(mushroomComponents))
	}
}

func TestMushroomComponentSizesSumExactly(t *testing.T) {
	sum, e, p := 0, 0, 0
	for _, c := range mushroomComponents {
		sum += c.size
		if c.class == Edible {
			e += c.size
		} else {
			p += c.size
		}
		// Factors must multiply to at least the size (the slack sampler
		// needs enough cells).
		prod := 1
		for _, f := range c.factors {
			prod *= f
		}
		if prod < c.size {
			t.Errorf("component size %d exceeds its factor product %d", c.size, prod)
		}
	}
	if sum != 8124 || e != 4208 || p != 3916 {
		t.Errorf("component sums = %d (%de/%dp), want 8124 (4208/3916)", sum, e, p)
	}
}

func TestMushroomOdorSeparatesClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Mushroom(DefaultMushroomConfig(), rng)
	edible := map[string]bool{"none": true, "anise": true, "almond": true}
	for i, r := range d.Records {
		if r[attrOdor] == dataset.Missing {
			continue
		}
		name := d.Schema.Attrs[attrOdor].Domain[r[attrOdor]]
		if edible[name] != (d.Labels[i] == Edible) {
			t.Fatalf("record %d: odor %q inconsistent with class %s", i, name, MushroomClassNames[d.Labels[i]])
		}
	}
}

func TestMushroomComponentsShareValues(t *testing.T) {
	// The paper: "every pair of clusters generally have some common values
	// for the attributes and thus clusters are not well-separated".
	rng := rand.New(rand.NewSource(3))
	specs := buildMushroomSpecs(DefaultMushroomConfig(), rng)
	sharing := 0
	for i := 0; i < len(specs); i++ {
		for j := i + 1; j < len(specs); j++ {
			if s := len(mushroomAttrs) - separation(specs[i], specs[j]); s > 10 {
				sharing++
			}
		}
	}
	pairs := len(specs) * (len(specs) - 1) / 2
	if float64(sharing) < 0.8*float64(pairs) {
		t.Errorf("only %d/%d component pairs share >10 attribute values", sharing, pairs)
	}
}

func TestMushroomDeterministicPerSeed(t *testing.T) {
	a := Mushroom(DefaultMushroomConfig(), rand.New(rand.NewSource(5)))
	b := Mushroom(DefaultMushroomConfig(), rand.New(rand.NewSource(5)))
	for i := range a.Records {
		for j := range a.Records[i] {
			if a.Records[i][j] != b.Records[i][j] {
				t.Fatal("generation not deterministic for equal seeds")
			}
		}
	}
}

func TestFundsShapeMatchesTable1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Funds(DefaultFundsConfig(), rng)
	if len(d.Series) != 795 {
		t.Errorf("funds = %d, want 795", len(d.Series))
	}
	if d.Days != 549 {
		t.Errorf("days = %d, want 549 (548 change attributes)", d.Days)
	}
	groups := make(map[int]int)
	for _, l := range d.Labels {
		groups[l]++
	}
	if groups[OutlierLabel] == 0 {
		t.Error("expected outlier funds")
	}
	// Table 4 sizes for the 16 named groups.
	want := []int{4, 10, 24, 15, 5, 3, 26, 3, 10, 4, 4, 6, 5, 8, 107, 70}
	for g, w := range want {
		if groups[g] != w {
			t.Errorf("group %s size = %d, want %d", d.GroupNames[g], groups[g], w)
		}
	}
	// 24 pairs.
	pairs := 0
	for g := 16; g < len(d.GroupNames); g++ {
		if groups[g] == 2 {
			pairs++
		}
	}
	if pairs != 24 {
		t.Errorf("pairs = %d, want 24", pairs)
	}
}

func TestFundsYoungHaveMissingPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Funds(DefaultFundsConfig(), rng)
	young := 0
	for _, s := range d.Series {
		if s.Missing(0) {
			young++
			// Missing must be a prefix: once present, always present.
			seen := false
			for t2 := 0; t2 < len(s); t2++ {
				if !s.Missing(t2) {
					seen = true
				} else if seen {
					t.Fatal("missing value after launch")
				}
			}
		}
	}
	if frac := float64(young) / float64(len(d.Series)); frac < 0.15 || frac > 0.35 {
		t.Errorf("young-fund fraction = %.2f, want ~0.25", frac)
	}
}

func TestFundsPricesRoundTripMoves(t *testing.T) {
	// Discretizing the synthesized prices must yield moves of all three
	// kinds, with bond groups showing more "No" days than growth groups.
	rng := rand.New(rand.NewSource(3))
	d := Funds(DefaultFundsConfig(), rng)
	countNo := func(gi int) float64 {
		var no, tot float64
		for i, l := range d.Labels {
			if l != gi {
				continue
			}
			rec := timeseries.Discretize(d.Series[i])
			for _, v := range rec {
				if v == dataset.Missing {
					continue
				}
				tot++
				if v == int(timeseries.NoChange) {
					no++
				}
			}
		}
		if tot == 0 {
			return math.NaN()
		}
		return no / tot
	}
	bondNo := countNo(0)    // Bonds 1
	growthNo := countNo(14) // Growth 2
	if !(bondNo > growthNo+0.2) {
		t.Errorf("bond No-fraction %.2f should well exceed growth %.2f", bondNo, growthNo)
	}
}
