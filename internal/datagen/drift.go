package datagen

import (
	"math"
	"math/rand"

	"rock/internal/dataset"
)

// DriftConfig parameterizes the drifting-basket stream: the Section 5.3
// basket generator turned into an unbounded transaction source whose cluster
// vocabularies rotate over time. It exists so drift drills have a corpus
// with ground truth on both axes — which cluster each transaction belongs
// to, and exactly when and how much the underlying distribution moved.
type DriftConfig struct {
	// Basket supplies the cluster shapes. ClusterSizes act as draw weights
	// (and, with Outliers, set the outlier fraction); the stream itself is
	// unbounded.
	Basket BasketConfig
	// DriftEvery rotates the defining item sets after every DriftEvery
	// drawn transactions. Zero disables drift (a stationary stream).
	DriftEvery int
	// DriftFrac is the fraction of each cluster's defining items replaced
	// per rotation, rounded up. Replacement items are fresh, never-seen
	// ids, so every rotation provably moves the distribution: a model
	// trained before it has never observed the new vocabulary.
	DriftFrac float64
}

// DriftStream draws an endless labeled transaction stream under DriftConfig.
// Not goroutine-safe.
type DriftStream struct {
	cfg       DriftConfig
	rng       *rand.Rand
	defining  []dataset.Transaction
	universe  dataset.Transaction
	nextItem  dataset.Item
	weights   []int // cumulative cluster weights; outliers beyond the last
	total     int
	drawn     int
	rotations int
}

// NewDriftStream builds the initial item universe exactly as Basket does
// (pairwise-shared items first, exclusive fills after) and returns a stream
// positioned before the first transaction.
func NewDriftStream(cfg DriftConfig, rng *rand.Rand) *DriftStream {
	// Reuse the batch generator's universe construction for the templates:
	// generate zero transactions, keep the defining sets.
	shape := cfg.Basket
	sizes := make([]int, len(shape.ClusterSizes))
	shape.ClusterSizes = sizes // all zero: just build the universe
	shape.Outliers = 0
	base := Basket(shape, rng)

	s := &DriftStream{
		cfg:      cfg,
		rng:      rng,
		defining: base.Defining,
		nextItem: dataset.Item(base.NumItems),
	}
	s.universe = dataset.Transaction{}
	for _, d := range s.defining {
		s.universe = s.universe.Union(d)
	}
	s.weights = make([]int, len(cfg.Basket.ClusterSizes))
	for i, w := range cfg.Basket.ClusterSizes {
		s.total += w
		s.weights[i] = s.total
	}
	s.total += cfg.Basket.Outliers
	if s.total <= 0 {
		panic("datagen: drift stream needs positive cluster sizes or outliers")
	}
	return s
}

// Next draws one transaction and its true label (OutlierLabel for outlier
// draws), rotating the vocabulary first when a drift boundary is reached.
func (s *DriftStream) Next() (dataset.Transaction, int) {
	if s.cfg.DriftEvery > 0 && s.drawn > 0 && s.drawn%s.cfg.DriftEvery == 0 &&
		s.drawn/s.cfg.DriftEvery > s.rotations {
		s.rotate()
	}
	s.drawn++
	r := s.rng.Intn(s.total)
	for ci, cum := range s.weights {
		if r < cum {
			return drawTxn(s.defining[ci], s.cfg.Basket, s.rng), ci
		}
	}
	return drawTxn(s.universe, s.cfg.Basket, s.rng), OutlierLabel
}

// rotate replaces ceil(DriftFrac · |defining|) random items of every cluster
// with fresh ids and rebuilds the outlier universe.
func (s *DriftStream) rotate() {
	s.rotations++
	for ci, d := range s.defining {
		n := int(math.Ceil(s.cfg.DriftFrac * float64(len(d))))
		if n > len(d) {
			n = len(d)
		}
		if n == 0 {
			continue
		}
		// Partial Fisher-Yates picks the victims; fresh ids replace them.
		scratch := d.Clone()
		for i := 0; i < n; i++ {
			j := i + s.rng.Intn(len(scratch)-i)
			scratch[i], scratch[j] = scratch[j], scratch[i]
		}
		for i := 0; i < n; i++ {
			scratch[i] = s.nextItem
			s.nextItem++
		}
		scratch.Normalize()
		s.defining[ci] = scratch
	}
	s.universe = dataset.Transaction{}
	for _, d := range s.defining {
		s.universe = s.universe.Union(d)
	}
}

// Drawn returns how many transactions the stream has produced.
func (s *DriftStream) Drawn() int { return s.drawn }

// Rotations returns how many drift rotations have occurred.
func (s *DriftStream) Rotations() int { return s.rotations }

// Defining returns the current cluster templates (shared, not copies).
func (s *DriftStream) Defining() []dataset.Transaction { return s.defining }

// NumItems returns the item-universe size including retired ids (item ids
// are never reused, so this is one past the largest id ever drawn).
func (s *DriftStream) NumItems() int { return int(s.nextItem) }
