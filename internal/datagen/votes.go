package datagen

import (
	"math/rand"

	"rock/internal/dataset"
)

// voteIssue is one of the 16 issues of the 1984 congressional voting data,
// with the probability of a Yes vote conditioned on party. The probabilities
// are read off the paper's Table 7, which reports the frequent value and its
// frequency per cluster (Republican cluster 1, Democrat cluster 2); e.g.
// "(physician-fee-freeze, y, 0.92)" for Republicans gives pRepYes = 0.92,
// and "(physician-fee-freeze, n, 0.96)" for Democrats gives pDemYes = 0.04.
type voteIssue struct {
	name             string
	pRepYes, pDemYes float64
}

var voteIssues = []voteIssue{
	{"handicapped-infants", 0.15, 0.65},
	{"water-project-cost-sharing", 0.51, 0.50},
	{"adoption-of-the-budget-resolution", 0.13, 0.94},
	{"physician-fee-freeze", 0.92, 0.04},
	{"el-salvador-aid", 0.99, 0.08},
	{"religious-groups-in-schools", 0.93, 0.33},
	{"anti-satellite-test-ban", 0.16, 0.89},
	{"aid-to-nicaraguan-contras", 0.10, 0.97},
	{"mx-missile", 0.07, 0.86},
	{"immigration", 0.51, 0.51},
	{"synfuels-corporation-cutback", 0.23, 0.44},
	{"education-spending", 0.86, 0.10},
	{"superfund-right-to-sue", 0.90, 0.21},
	{"crime", 0.98, 0.27},
	{"duty-free-exports", 0.11, 0.68},
	{"export-administration-act-south-africa", 0.55, 0.70},
}

// Party labels for the votes data set.
const (
	Republican = 0
	Democrat   = 1
)

// VoteClassNames index the party labels.
var VoteClassNames = []string{"Republicans", "Democrats"}

// VotesConfig parameterizes the congressional-votes generator.
type VotesConfig struct {
	// Republicans and Democrats are the record counts (paper: 168 / 267).
	Republicans, Democrats int
	// MissingRate is the per-attribute probability of a missing value
	// (the original has "very few").
	MissingRate float64
	// DemFullCrossover is the number of Democrats who vote exactly like
	// loyal Republicans (the handful of 1984 Democrats with Republican
	// voting records). Both algorithms inevitably place them in the
	// Republican cluster; they are the irreducible ~12% contamination the
	// paper's Table 2 shows for ROCK.
	DemFullCrossover int
	// DemBloc, BlocBlend and BlocFidelity model the southern-Democrat
	// bloc: DemBloc Democrats vote a concrete shared platform (drawn with
	// weight BlocBlend toward the Republican positions) with probability
	// BlocFidelity. The bloc is internally tight, so under the centroid
	// algorithm its members coalesce early and the bloc cluster is later
	// absorbed into the nearer (Republican) cluster — the paper's extra
	// traditional-algorithm contamination. Under ROCK at theta = 0.73 the
	// bloc has no cross links to either party core, so it survives as a
	// separate small cluster that outlier weeding removes.
	DemBloc      int
	BlocBlend    float64
	BlocFidelity float64
	// RepCrossoverFrac and RepBlendLo/Hi add a few moderate Republicans.
	RepCrossoverFrac       float64
	RepBlendLo, RepBlendHi float64
	// FactionsPerParty, FactionFidelity and SoftIssueBand model intra-party
	// vote correlation: on "soft" issues (party Yes probability within
	// SoftIssueBand of 0.5) a loyal member votes their faction's fixed
	// position with FactionFidelity instead of flipping an independent
	// coin. Real roll-call data is duplicate-rich because factions vote
	// together; without this, independently drawn records are so spread
	// out that centroid clustering leaves a third of them as singletons.
	FactionsPerParty int
	FactionFidelity  float64
	SoftIssueBand    float64
}

// DefaultVotesConfig returns the paper's Table 1 shape.
func DefaultVotesConfig() VotesConfig {
	return VotesConfig{
		Republicans: 168, Democrats: 267,
		MissingRate:      0.02,
		DemFullCrossover: 20,
		DemBloc:          43, BlocBlend: 0.55, BlocFidelity: 0.96,
		RepCrossoverFrac: 0.04, RepBlendLo: 0.35, RepBlendHi: 0.60,
		FactionsPerParty: 2, FactionFidelity: 0.90, SoftIssueBand: 0.20,
	}
}

// VotesData is a generated congressional-votes data set.
type VotesData struct {
	Schema  *dataset.Schema
	Records []dataset.Record
	// Labels holds Republican or Democrat per record.
	Labels []int
}

// Votes generates the 435-record, 16-boolean-attribute congressional voting
// stand-in: each Congress member votes Yes on each issue with their party's
// Table 7 probability, independently across issues, with a small missing
// rate. As in the original, the two classes are well-separated (on 12 of 13
// contested issues the party majorities differ) and of comparable size.
func Votes(cfg VotesConfig, rng *rand.Rand) *VotesData {
	attrs := make([]dataset.Attribute, len(voteIssues))
	for i, is := range voteIssues {
		attrs[i] = dataset.Attribute{Name: is.name, Domain: []string{"n", "y"}}
	}
	d := &VotesData{Schema: dataset.NewSchema(attrs...)}

	// Faction platforms: per party and faction, fixed positions on the
	// soft (contested) issues, drawn from the party probability.
	soft := func(p float64) bool { return p > 0.5-cfg.SoftIssueBand && p < 0.5+cfg.SoftIssueBand }
	nf := cfg.FactionsPerParty
	if nf < 1 {
		nf = 1
	}
	factions := make([][][]int, 2) // [party][faction][issue] -> 0/1
	for party := 0; party < 2; party++ {
		factions[party] = make([][]int, nf)
		for f := 0; f < nf; f++ {
			plat := make([]int, len(voteIssues))
			for a, is := range voteIssues {
				p := is.pRepYes
				if party == Democrat {
					p = is.pDemYes
				}
				if rng.Float64() < p {
					plat[a] = 1
				}
			}
			factions[party][f] = plat
		}
	}
	partyP := func(party int, is voteIssue) float64 {
		if party == Democrat {
			return is.pDemYes
		}
		return is.pRepYes
	}
	// loyalP returns the per-issue Yes probability of a loyal member of
	// the given party and faction, optionally blended toward the other
	// party (Republican moderates).
	loyalP := func(party, faction int, blend float64) func(a int, is voteIssue) float64 {
		return func(a int, is voteIssue) float64 {
			own := partyP(party, is)
			if soft(own) && blend == 0 {
				if factions[party][faction][a] == 1 {
					return cfg.FactionFidelity
				}
				return 1 - cfg.FactionFidelity
			}
			other := partyP(1-party, is)
			return (1-blend)*own + blend*other
		}
	}

	// vote draws one record given per-issue Yes probabilities.
	vote := func(pYes func(a int, is voteIssue) float64) dataset.Record {
		rec := dataset.NewRecord(len(voteIssues))
		for a, is := range voteIssues {
			if rng.Float64() < cfg.MissingRate {
				continue
			}
			if rng.Float64() < pYes(a, is) {
				rec[a] = 1
			} else {
				rec[a] = 0
			}
		}
		return rec
	}

	for r := 0; r < cfg.Republicans; r++ {
		blend := 0.0
		if rng.Float64() < cfg.RepCrossoverFrac {
			blend = cfg.RepBlendLo + rng.Float64()*(cfg.RepBlendHi-cfg.RepBlendLo)
		}
		d.Records = append(d.Records, vote(loyalP(Republican, rng.Intn(nf), blend)))
		d.Labels = append(d.Labels, Republican)
	}
	// The southern-Democrat bloc platform: a concrete vote per issue, drawn
	// from the blend of the two party positions (leaning Republican).
	blocPlatform := make([]int, len(voteIssues))
	for a, is := range voteIssues {
		p := (1-cfg.BlocBlend)*is.pDemYes + cfg.BlocBlend*is.pRepYes
		if rng.Float64() < p {
			blocPlatform[a] = 1
		}
	}
	full, bloc := cfg.DemFullCrossover, cfg.DemBloc
	if full+bloc > cfg.Democrats {
		full, bloc = 0, 0
	}
	for r := 0; r < cfg.Democrats; r++ {
		switch {
		case r < full:
			// Votes exactly like a loyal Republican.
			d.Records = append(d.Records, vote(loyalP(Republican, rng.Intn(nf), 0)))
		case r < full+bloc:
			d.Records = append(d.Records, vote(func(a int, is voteIssue) float64 {
				if blocPlatform[a] == 1 {
					return cfg.BlocFidelity
				}
				return 1 - cfg.BlocFidelity
			}))
		default:
			d.Records = append(d.Records, vote(loyalP(Democrat, rng.Intn(nf), 0)))
		}
		d.Labels = append(d.Labels, Democrat)
	}
	// Shuffle so record order carries no class signal.
	rng.Shuffle(len(d.Records), func(i, j int) {
		d.Records[i], d.Records[j] = d.Records[j], d.Records[i]
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
	})
	return d
}
