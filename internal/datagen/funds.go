package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"rock/internal/timeseries"
)

// FundGroup describes one true cluster of mutual funds: funds in a group
// track a shared latent daily-move pattern with high fidelity. The group
// taxonomy mirrors the paper's Table 4 (seven bond groups, financial
// services, precious metals, three international groups, balanced, and
// three growth groups) plus the 24 two-fund clusters Section 5.2 describes.
type FundGroup struct {
	Name string
	Size int
	// PUp, PDown, PNo is the latent pattern's daily move distribution.
	// Bond funds barely move day to day (high PNo); growth funds move
	// nearly every day.
	PUp, PDown, PNo float64
}

// DefaultFundGroups reproduces the Table 4 cluster sizes plus 24 pairs.
func DefaultFundGroups() []FundGroup {
	bond := func(name string, size int) FundGroup {
		return FundGroup{Name: name, Size: size, PUp: 0.28, PDown: 0.22, PNo: 0.50}
	}
	eq := func(name string, size int) FundGroup {
		return FundGroup{Name: name, Size: size, PUp: 0.46, PDown: 0.42, PNo: 0.12}
	}
	groups := []FundGroup{
		bond("Bonds 1", 4), bond("Bonds 2", 10), bond("Bonds 3", 24),
		bond("Bonds 4", 15), bond("Bonds 5", 5), bond("Bonds 6", 3),
		bond("Bonds 7", 26),
		eq("Financial Service", 3),
		eq("Precious Metals", 10),
		eq("International 1", 4), eq("International 2", 4), eq("International 3", 6),
		{Name: "Balanced", Size: 5, PUp: 0.40, PDown: 0.33, PNo: 0.27},
		eq("Growth 1", 8), eq("Growth 2", 107), eq("Growth 3", 70),
	}
	pairNames := []string{
		"Harbor/Ivy International", "Japan", "Europe", "Energy",
		"Emerging Markets", "Utilities", "Health", "Technology",
		"Real Estate", "Small Cap", "Mid Cap", "Index",
		"Convertible", "High Yield", "Global Bond", "Municipal NY",
		"Municipal CA", "Treasury", "Ginnie Mae", "Corporate",
		"Equity Income", "Aggressive Growth", "Latin America", "Pacific",
	}
	for _, n := range pairNames {
		groups = append(groups, eq("Pair: "+n, 2))
	}
	return groups
}

// FundsConfig parameterizes the mutual-fund generator.
type FundsConfig struct {
	// Groups are the true clusters; defaults to DefaultFundGroups.
	Groups []FundGroup
	// TotalFunds is the total record count including outlier funds
	// (paper: 795). Funds beyond the group sizes become outliers with
	// independent patterns.
	TotalFunds int
	// Fidelity is the probability a fund's daily move copies its group's
	// latent move (the rest are idiosyncratic draws).
	Fidelity float64
	// YoungFrac is the fraction of funds launched after the epoch start,
	// which therefore have missing leading prices (paper: funds launched
	// after Jan 4, 1993).
	YoungFrac float64
	// MaxLaunchDay bounds how late a young fund may launch, as an index
	// into the trading calendar.
	MaxLaunchDay int
	// AssociatesPerPair and AssociateFidelity control the loosely-tracking
	// funds generated around each two-fund group. A pair in isolation can
	// never have a common neighbor and hence never any links; in the real
	// data other funds (e.g. other Japan funds) loosely track the same
	// pattern and bridge the pair. Associates copy the pair's latent
	// pattern with AssociateFidelity — tuned so they sit at the edge of
	// the theta = 0.8 neighborhood — and are labeled outliers in the
	// ground truth.
	AssociatesPerPair int
	AssociateFidelity float64
}

// DefaultFundsConfig returns the paper's Table 1 shape.
func DefaultFundsConfig() FundsConfig {
	return FundsConfig{
		Groups:            DefaultFundGroups(),
		TotalFunds:        795,
		Fidelity:          0.96,
		YoungFrac:         0.25,
		MaxLaunchDay:      350,
		AssociatesPerPair: 2,
		AssociateFidelity: 0.85,
	}
}

// FundsData is a generated mutual-fund data set.
type FundsData struct {
	// Days is the shared trading calendar.
	Days int
	// Series holds each fund's closing prices (NaN before launch).
	Series []timeseries.Series
	// Names are synthetic ticker-style fund names.
	Names []string
	// Labels holds each fund's group index, or OutlierLabel.
	Labels []int
	// GroupNames indexes the group labels.
	GroupNames []string
}

// Funds generates the mutual-fund stand-in: per group a latent Up/Down/No
// pattern over the 549-day trading calendar; each fund follows its group's
// pattern with the configured fidelity; outlier funds follow independent
// patterns; young funds miss a price prefix. Prices are synthesized so the
// Up/Down/No discretization recovers the intended moves exactly (moves of at
// least one cent, "No" days flat).
func Funds(cfg FundsConfig, rng *rand.Rand) *FundsData {
	if cfg.Groups == nil {
		cfg.Groups = DefaultFundGroups()
	}
	days := len(timeseries.FundCalendar())
	d := &FundsData{Days: days}

	grouped := 0
	for _, g := range cfg.Groups {
		grouped += g.Size
	}
	if grouped > cfg.TotalFunds {
		panic(fmt.Sprintf("datagen: group sizes (%d) exceed TotalFunds (%d)", grouped, cfg.TotalFunds))
	}

	fund := 0
	emit := func(label int, g FundGroup, latent []timeseries.Move, fidelity float64) {
		moves := make([]timeseries.Move, days-1)
		for t := range moves {
			if latent != nil && rng.Float64() < fidelity {
				moves[t] = latent[t]
			} else {
				moves[t] = drawMove(g, rng)
			}
		}
		launch := 0
		if rng.Float64() < cfg.YoungFrac {
			launch = 1 + rng.Intn(cfg.MaxLaunchDay)
		}
		d.Series = append(d.Series, synthesizePrices(moves, launch, days, rng))
		d.Names = append(d.Names, fmt.Sprintf("FUND%03d", fund))
		d.Labels = append(d.Labels, label)
		fund++
	}

	for gi, g := range cfg.Groups {
		d.GroupNames = append(d.GroupNames, g.Name)
		latent := make([]timeseries.Move, days-1)
		for t := range latent {
			latent[t] = drawMove(g, rng)
		}
		for i := 0; i < g.Size; i++ {
			emit(gi, g, latent, cfg.Fidelity)
		}
		if g.Size == 2 {
			// Loosely-tracking associates bridge the pair (see
			// AssociatesPerPair); they count against the outlier budget.
			for i := 0; i < cfg.AssociatesPerPair && fund < cfg.TotalFunds; i++ {
				emit(OutlierLabel, g, latent, cfg.AssociateFidelity)
			}
		}
	}
	solo := FundGroup{PUp: 0.40, PDown: 0.35, PNo: 0.25}
	for fund < cfg.TotalFunds {
		emit(OutlierLabel, solo, nil, 0)
	}
	// Shuffle so fund order carries no group signal.
	rng.Shuffle(len(d.Series), func(i, j int) {
		d.Series[i], d.Series[j] = d.Series[j], d.Series[i]
		d.Names[i], d.Names[j] = d.Names[j], d.Names[i]
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
	})
	return d
}

func drawMove(g FundGroup, rng *rand.Rand) timeseries.Move {
	r := rng.Float64()
	switch {
	case r < g.PUp:
		return timeseries.Up
	case r < g.PUp+g.PDown:
		return timeseries.Down
	default:
		return timeseries.NoChange
	}
}

// synthesizePrices builds a price path consistent with the move sequence:
// Up days gain 1–25 cents, Down days lose 1–25 cents, No days are exactly
// flat. The starting price is high enough that the worst-case cumulative
// loss cannot reach zero. Days before launch are NaN.
func synthesizePrices(moves []timeseries.Move, launch, days int, rng *rand.Rand) timeseries.Series {
	s := make(timeseries.Series, days)
	price := 150.0 + rng.Float64()*50
	for t := 0; t < days; t++ {
		if t < launch {
			s[t] = math.NaN()
			continue
		}
		if t > launch {
			switch moves[t-1] {
			case timeseries.Up:
				price += float64(1+rng.Intn(25)) / 100
			case timeseries.Down:
				price -= float64(1+rng.Intn(25)) / 100
			}
		}
		s[t] = price
	}
	return s
}
