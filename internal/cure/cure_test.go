package cure

import (
	"math/rand"
	"testing"
)

func blobs(rng *rand.Rand, centers [][]float64, per int, noise float64) ([][]float64, []int) {
	var vecs [][]float64
	var labels []int
	for c, ctr := range centers {
		for i := 0; i < per; i++ {
			v := make([]float64, len(ctr))
			for d := range v {
				v[d] = ctr[d] + rng.NormFloat64()*noise
			}
			vecs = append(vecs, v)
			labels = append(labels, c)
		}
	}
	return vecs, labels
}

func TestCureSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vecs, labels := blobs(rng, [][]float64{{0, 0}, {10, 0}, {0, 10}}, 25, 0.5)
	res, err := Cluster(vecs, Config{K: 3, NumRep: 5, Shrink: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	for _, c := range res.Clusters {
		l := labels[c[0]]
		for _, p := range c {
			if labels[p] != l {
				t.Fatalf("mixed cluster")
			}
		}
	}
}

// TestCureElongatedClusters is CURE's raison d'être: representative points
// let it find non-spherical clusters that centroid methods split. Two
// parallel line segments.
func TestCureElongatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var vecs [][]float64
	var labels []int
	for i := 0; i < 60; i++ {
		x := rng.Float64() * 20
		vecs = append(vecs, []float64{x, rng.NormFloat64() * 0.2})
		labels = append(labels, 0)
		vecs = append(vecs, []float64{x, 5 + rng.NormFloat64()*0.2})
		labels = append(labels, 1)
	}
	res, err := Cluster(vecs, Config{K: 2, NumRep: 10, Shrink: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		l := labels[c[0]]
		for _, p := range c {
			if labels[p] != l {
				t.Fatalf("elongated clusters mixed")
			}
		}
	}
}

func TestCureRepresentativesShrink(t *testing.T) {
	vecs := [][]float64{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	res, err := Cluster(vecs, Config{K: 1, NumRep: 4, Shrink: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Centroid is (1,1); with shrink 0.5 every representative must lie
	// halfway between a point and the centroid.
	for _, rep := range res.Representatives[0] {
		for d := range rep {
			if rep[d] != 0.5 && rep[d] != 1.5 {
				t.Fatalf("representative %v not shrunk halfway", rep)
			}
		}
	}
}

func TestCureRepsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vecs, _ := blobs(rng, [][]float64{{0, 0}}, 30, 1)
	res, err := Cluster(vecs, Config{K: 1, NumRep: 7, Shrink: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Representatives[0]) != 7 {
		t.Fatalf("reps = %d, want 7", len(res.Representatives[0]))
	}
}

func TestCureValidation(t *testing.T) {
	if _, err := Cluster(nil, Config{K: 0, NumRep: 1, Shrink: 0.2}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Cluster(nil, Config{K: 1, NumRep: 0, Shrink: 0.2}); err == nil {
		t.Error("NumRep=0 accepted")
	}
	if _, err := Cluster(nil, Config{K: 1, NumRep: 1, Shrink: 2}); err == nil {
		t.Error("Shrink=2 accepted")
	}
}

func TestCureEmptyAndSingleton(t *testing.T) {
	res, err := Cluster(nil, Config{K: 2, NumRep: 3, Shrink: 0.2})
	if err != nil || len(res.Clusters) != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
	res, err = Cluster([][]float64{{1, 2}}, Config{K: 2, NumRep: 3, Shrink: 0.2})
	if err != nil || len(res.Clusters) != 1 {
		t.Fatalf("singleton: %v %v", res, err)
	}
}
