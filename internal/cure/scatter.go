package cure

import "math/rand"

// Scatter selects up to count well-scattered candidates from n by CURE's
// farthest-point heuristic (Guha, Rastogi & Shim, SIGMOD 1998, §3.1): the
// selection starts from first and repeatedly adds the candidate whose
// minimum distance to the already-chosen set is largest. Indices are in
// [0, n); dist must be symmetric. The returned indices are in selection
// order (first element is first).
//
// The heuristic is metric-agnostic on purpose: cure's own merge step runs
// it under squared Euclidean distance over numeric points, and the sharded
// trainer (internal/train) runs it under 1 - similarity over categorical
// transactions to summarize shard clusters with representative points.
func Scatter(n, count, first int, dist func(i, j int) float64) []int {
	if n <= 0 || count <= 0 || first < 0 || first >= n {
		return nil
	}
	if count > n {
		count = n
	}
	chosen := make([]int, 1, count)
	chosen[0] = first
	// minDist[i] is the distance from candidate i to the chosen set.
	minDist := make([]float64, n)
	for i := 0; i < n; i++ {
		minDist[i] = dist(i, first)
	}
	for len(chosen) < count {
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			if minDist[i] > bestD {
				best, bestD = i, minDist[i]
			}
		}
		chosen = append(chosen, best)
		for i := 0; i < n; i++ {
			if d := dist(i, best); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return chosen
}

// ScatterMedoid runs Scatter seeded at the point set's medoid: the point
// with the smallest total distance to the others, i.e. (under dist = 1 - sim)
// the one with the greatest total similarity — the densest point, the natural
// anchor for a scatter over a categorical cluster. When n exceeds medoidCap
// the medoid is estimated on a random subset drawn from rng; the medoid only
// seeds the selection, so an approximate one is fine. medoidCap <= 0 or a nil
// rng disables subsetting. Both the sharded trainer and the streaming
// clusterer derive their representative sets through this entry point.
func ScatterMedoid(n, count, medoidCap int, dist func(i, j int) float64, rng *rand.Rand) []int {
	if n <= 0 || count <= 0 {
		return nil
	}
	cand := make([]int, n)
	for i := range cand {
		cand[i] = i
	}
	if medoidCap > 0 && n > medoidCap && rng != nil {
		cand = rng.Perm(n)[:medoidCap]
	}
	medoid, best := cand[0], -1.0
	for _, a := range cand {
		total := 0.0
		for _, b := range cand {
			if a != b {
				total += 1 - dist(a, b)
			}
		}
		if total > best {
			medoid, best = a, total
		}
	}
	return Scatter(n, count, medoid, dist)
}
