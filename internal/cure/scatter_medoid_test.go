package cure

import (
	"math/rand"
	"testing"
)

// TestScatterMedoidSeedsAtMedoid: with a clear densest point, the first
// selected index must be it, and the rest must follow the farthest-point
// rule (verified against Scatter seeded at the same point).
func TestScatterMedoidSeedsAtMedoid(t *testing.T) {
	// Points on a line; index 2 minimizes total distance.
	xs := []float64{0, 1, 2, 3, 4}
	dist := func(i, j int) float64 {
		d := xs[i] - xs[j]
		if d < 0 {
			d = -d
		}
		return d / 4 // keep dist in [0,1] so 1-dist acts like a similarity
	}
	got := ScatterMedoid(len(xs), 3, 0, dist, nil)
	if len(got) != 3 || got[0] != 2 {
		t.Fatalf("ScatterMedoid = %v, want medoid 2 first", got)
	}
	want := Scatter(len(xs), 3, 2, dist)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScatterMedoid = %v, Scatter from medoid = %v", got, want)
		}
	}
}

func TestScatterMedoidSubsetEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	pts := make([]float64, n)
	for i := range pts {
		pts[i] = rng.Float64()
	}
	dist := func(i, j int) float64 {
		d := pts[i] - pts[j]
		if d < 0 {
			d = -d
		}
		return d
	}
	got := ScatterMedoid(n, 5, 32, dist, rng)
	if len(got) != 5 {
		t.Fatalf("want 5 indices, got %v", got)
	}
	seen := map[int]bool{}
	for _, ix := range got {
		if ix < 0 || ix >= n || seen[ix] {
			t.Fatalf("bad selection %v", got)
		}
		seen[ix] = true
	}
}

func TestScatterMedoidDegenerate(t *testing.T) {
	if got := ScatterMedoid(0, 3, 0, nil, nil); got != nil {
		t.Fatalf("n=0: got %v", got)
	}
	if got := ScatterMedoid(3, 0, 0, nil, nil); got != nil {
		t.Fatalf("count=0: got %v", got)
	}
	one := ScatterMedoid(1, 4, 0, func(i, j int) float64 { return 0 }, nil)
	if len(one) != 1 || one[0] != 0 {
		t.Fatalf("n=1: got %v", one)
	}
}
