// Package cure implements CURE (Guha, Rastogi & Shim, SIGMOD 1998) — the
// ROCK authors' companion algorithm for numeric data, which Section 2 of
// the ROCK paper describes: agglomerative clustering where each cluster is
// represented by a fixed number of well-scattered points shrunk toward the
// centroid, and the inter-cluster distance is the minimum distance between
// representatives. ROCK's evaluation does not run CURE (it targets numeric
// data), but the ROCK pipeline borrows CURE's random-sampling analysis;
// this implementation completes the family and serves as a further baseline
// on boolean-encoded categorical data.
package cure

import (
	"errors"
	"math"
	"sort"
)

// Config controls a CURE run.
type Config struct {
	// K is the number of clusters to stop at.
	K int
	// NumRep is the number of representative points per cluster (the
	// paper's c, typically 10).
	NumRep int
	// Shrink is the fraction each representative moves toward the
	// centroid (the paper's alpha, typically 0.2–0.7).
	Shrink float64
}

// Result is the outcome of a CURE run.
type Result struct {
	// Clusters holds sorted member indices, largest cluster first.
	Clusters [][]int
	// Representatives holds each cluster's shrunk representative points,
	// aligned with Clusters.
	Representatives [][][]float64
}

type cluster struct {
	members  []int
	centroid []float64
	reps     [][]float64
}

// Cluster agglomerates the points under Euclidean distance.
func Cluster(points [][]float64, cfg Config) (*Result, error) {
	if cfg.K <= 0 {
		return nil, errors.New("cure: K must be positive")
	}
	if cfg.NumRep <= 0 {
		return nil, errors.New("cure: NumRep must be positive")
	}
	if cfg.Shrink < 0 || cfg.Shrink > 1 {
		return nil, errors.New("cure: Shrink must be in [0,1]")
	}
	n := len(points)
	if n == 0 {
		return &Result{}, nil
	}
	clusters := make([]*cluster, n)
	for i, p := range points {
		clusters[i] = &cluster{
			members:  []int{i},
			centroid: append([]float64(nil), p...),
			reps:     [][]float64{append([]float64(nil), p...)},
		}
	}

	dist := func(a, b *cluster) float64 {
		best := math.Inf(1)
		for _, ra := range a.reps {
			for _, rb := range b.reps {
				if d := sqDist(ra, rb); d < best {
					best = d
				}
			}
		}
		return best
	}

	// Nearest-neighbor cache per live cluster, maintained like the hier
	// engine's: refresh when a cluster's cached neighbor dies, and check
	// every cluster against the freshly merged one (representative-based
	// distances are not reducible).
	nn := make([]int, n)
	nnd := make([]float64, n)
	refresh := func(i int) {
		nn[i] = -1
		nnd[i] = math.Inf(1)
		for j := 0; j < n; j++ {
			if j == i || clusters[j] == nil {
				continue
			}
			if d := dist(clusters[i], clusters[j]); d < nnd[i] {
				nn[i], nnd[i] = j, d
			}
		}
	}
	for i := 0; i < n; i++ {
		refresh(i)
	}

	live := n
	for live > cfg.K {
		bi, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if clusters[i] != nil && nn[i] >= 0 && nnd[i] < best {
				bi, best = i, nnd[i]
			}
		}
		if bi < 0 {
			break
		}
		bj := nn[bi]
		clusters[bi] = merge(points, clusters[bi], clusters[bj], cfg)
		clusters[bj] = nil
		live--
		refresh(bi)
		for i := 0; i < n; i++ {
			if clusters[i] == nil || i == bi {
				continue
			}
			if nn[i] == bi || nn[i] == bj {
				refresh(i)
			} else if d := dist(clusters[i], clusters[bi]); d < nnd[i] {
				nn[i], nnd[i] = bi, d
			}
		}
	}

	res := &Result{}
	for _, c := range clusters {
		if c == nil {
			continue
		}
		m := append([]int(nil), c.members...)
		sort.Ints(m)
		res.Clusters = append(res.Clusters, m)
		res.Representatives = append(res.Representatives, c.reps)
	}
	// Largest first, ties by first member; keep representatives aligned.
	order := make([]int, len(res.Clusters))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		x, y := res.Clusters[order[a]], res.Clusters[order[b]]
		if len(x) != len(y) {
			return len(x) > len(y)
		}
		return x[0] < y[0]
	})
	cs := make([][]int, len(order))
	rs := make([][][]float64, len(order))
	for i, o := range order {
		cs[i] = res.Clusters[o]
		rs[i] = res.Representatives[o]
	}
	res.Clusters, res.Representatives = cs, rs
	return res, nil
}

// merge joins two clusters and recomputes centroid and representatives: the
// paper's farthest-point heuristic picks NumRep well-scattered members,
// each then shrunk toward the centroid by Shrink.
func merge(points [][]float64, a, b *cluster, cfg Config) *cluster {
	na, nb := float64(len(a.members)), float64(len(b.members))
	dim := len(a.centroid)
	c := &cluster{members: append(append([]int(nil), a.members...), b.members...)}
	c.centroid = make([]float64, dim)
	for d := 0; d < dim; d++ {
		c.centroid[d] = (a.centroid[d]*na + b.centroid[d]*nb) / (na + nb)
	}

	// Well-scattered points: first the member farthest from the centroid,
	// then iteratively the member farthest from the chosen set (Scatter).
	first, firstD := 0, -1.0
	for mi, p := range c.members {
		if d := sqDist(points[p], c.centroid); d > firstD {
			first, firstD = mi, d
		}
	}
	scattered := Scatter(len(c.members), cfg.NumRep, first, func(i, j int) float64 {
		return sqDist(points[c.members[i]], points[c.members[j]])
	})
	chosen := make([]int, len(scattered))
	for i, mi := range scattered {
		chosen[i] = c.members[mi]
	}
	// Shrink toward the centroid.
	c.reps = make([][]float64, len(chosen))
	for i, p := range chosen {
		rep := make([]float64, dim)
		for d := 0; d < dim; d++ {
			rep[d] = points[p][d] + cfg.Shrink*(c.centroid[d]-points[p][d])
		}
		c.reps[i] = rep
	}
	return c
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
