package simjoin

import (
	"slices"
	"sort"

	"rock/internal/dataset"
	"rock/internal/links"
)

// IncIndex is the incremental form of the inverted-index threshold join:
// transactions arrive one at a time, and every Insert returns the new
// record's exact theta-neighbors among all previously inserted records. The
// neighbor lists it maintains are bit-identical to running the batch Join
// over the same prefix of the stream — the property the streaming clusterer
// (internal/stream) depends on and the equivalence test pins down.
//
// Exactness under insertion rests on one observation: the prefix filter is
// correct under ANY fixed total order of items, not just the DF order the
// batch index uses — a qualifying pair must share an item within both
// records' filter prefixes regardless of how items are ranked, as long as
// both records are ranked under the same order. So the incremental index
// freezes an item's rank at first sight (appending new items to the end of
// the order) and keeps every posting valid across inserts. The DF order only
// buys speed: rare-first prefixes keep posting lists short where they are
// probed most. To recover that property as frequencies accumulate, the index
// re-ranks all items by document frequency and rebuilds its postings each
// time the corpus doubles, which amortizes to O(1) rebuild work per insert.
//
// Below MinIndexTheta (or at theta <= 0, where the filters prune nothing)
// the index degrades to an exact brute-force scan per insert, mirroring the
// batch Source policy.
type IncIndex struct {
	m       Measure
	theta   float64
	indexed bool

	txns  []dataset.Transaction
	lists [][]int32 // mirrored neighbor lists, maintained per insert

	// Indexed-path state. rank freezes each item's position in the current
	// total order; df counts documents per item for the next re-rank.
	rank     map[dataset.Item]int32
	df       map[dataset.Item]int32
	recs     [][]int32 // per record: item ranks, sorted ascending
	postings [][]posting
	beta     []int32 // minOverlapAny memo by record length; 0 = unset
	maxLen   int

	rebuildAt int

	// Probe scratch, stamped per insert.
	seen []int32
}

// NewIncIndex creates an empty incremental index for the given measure and
// threshold. Theta must lie in [0, 1].
func NewIncIndex(m Measure, theta float64) *IncIndex {
	return &IncIndex{
		m:         m,
		theta:     theta,
		indexed:   theta >= MinIndexTheta,
		rank:      map[dataset.Item]int32{},
		df:        map[dataset.Item]int32{},
		rebuildAt: 64,
	}
}

// Len returns the number of inserted transactions.
func (ix *IncIndex) Len() int { return len(ix.txns) }

// Txn returns the i-th inserted transaction (shared, not a copy).
func (ix *IncIndex) Txn(i int) dataset.Transaction { return ix.txns[i] }

// Neighbors returns a view of the maintained neighbor lists. The returned
// structure shares the index's backing arrays and remains valid (and
// current) across subsequent Inserts; callers that need a stable snapshot
// must copy.
func (ix *IncIndex) Neighbors() *links.Neighbors {
	return &links.Neighbors{Lists: ix.lists}
}

// Insert adds t to the index and returns its id and the sorted list of its
// theta-neighbors among the records inserted before it (nil when it has
// none). The transaction is normalized in a copy if needed; the stored form
// is retained by the index.
func (ix *IncIndex) Insert(t dataset.Transaction) (id int32, neighbors []int32) {
	if !t.IsNormalized() {
		c := append(dataset.Transaction(nil), t...)
		c.Normalize()
		t = c
	}
	id = int32(len(ix.txns))
	if ix.indexed {
		neighbors = ix.insertIndexed(id, t)
	} else {
		neighbors = ix.insertBrute(id, t)
	}
	ix.txns = append(ix.txns, t)

	// Mirror: the new id is larger than every existing one, so appending it
	// keeps each earlier list sorted — exactly what links.Mirror produces.
	ix.lists = append(ix.lists, neighbors)
	for _, j := range neighbors {
		ix.lists[j] = append(ix.lists[j], id)
	}

	if ix.indexed && len(ix.txns) >= ix.rebuildAt {
		ix.rebuild()
		ix.rebuildAt = 2 * len(ix.txns)
	}
	return id, neighbors
}

// insertBrute verifies t against every stored record with the full merge
// intersection — the exact fallback for thresholds the filters cannot serve.
func (ix *IncIndex) insertBrute(id int32, t dataset.Transaction) []int32 {
	var row []int32
	rt := asRanks(t)
	for j, tj := range ix.txns {
		inter, _ := intersectAtLeast(rt, asRanks(tj), 0)
		if ix.m.Eval(inter, len(t), len(tj)) >= ix.theta {
			row = append(row, int32(j))
		}
	}
	return row
}

// asRanks reinterprets a normalized transaction as a sorted int32 slice for
// the shared merge-intersection helper.
func asRanks(t dataset.Transaction) []int32 {
	if len(t) == 0 {
		return nil
	}
	r := make([]int32, len(t))
	for i, it := range t {
		r[i] = int32(it)
	}
	return r
}

// insertIndexed ranks t under the current order (assigning fresh ranks to
// unseen items), probes the posting lists with the same filter chain the
// batch probe applies, and then indexes t's own filter prefix.
func (ix *IncIndex) insertIndexed(id int32, t dataset.Transaction) []int32 {
	for _, it := range t {
		ix.df[it]++
		if _, ok := ix.rank[it]; !ok {
			ix.rank[it] = int32(len(ix.rank))
			ix.postings = append(ix.postings, nil)
		}
	}
	rec := make([]int32, len(t))
	for i, it := range t {
		rec[i] = ix.rank[it]
	}
	slices.Sort(rec)
	if len(t) > ix.maxLen {
		ix.maxLen = len(t)
		ix.beta = append(ix.beta, make([]int32, ix.maxLen+1-len(ix.beta))...)
	}

	row := ix.probe(id, rec)

	ix.recs = append(ix.recs, rec)
	for p, r := range rec[:ix.prefixLen(len(rec))] {
		ix.postings[r] = append(ix.postings[r], posting{id: id, pos: int32(p)})
	}
	return row
}

// prefixLen returns the filter-prefix length for a record of length l,
// memoizing minOverlapAny per length (it depends only on measure and theta).
func (ix *IncIndex) prefixLen(l int) int {
	if l == 0 {
		return 0
	}
	if ix.beta[l] == 0 {
		ix.beta[l] = int32(ix.m.minOverlapAny(l, ix.theta))
	}
	return l - int(ix.beta[l]) + 1
}

// probe generates and verifies candidates for the ranked record rec. It is
// probeStripe's filter chain with the roles reversed: the new record probes
// the prefixes of every earlier record. All filters are symmetric in the
// pair, so the result is identical to the batch direction.
func (ix *IncIndex) probe(self int32, rec []int32) []int32 {
	li := len(rec)
	if li == 0 || len(ix.recs) == 0 {
		return nil
	}
	for len(ix.seen) < len(ix.recs) {
		ix.seen = append(ix.seen, -1)
	}
	var (
		row        []int32
		alphaByLen = make(map[int]int, 4)
	)
	for pi, r := range rec[:ix.prefixLen(li)] {
		for _, pe := range ix.postings[r] {
			j := pe.id
			if ix.seen[j] == self {
				continue
			}
			ix.seen[j] = self
			tj := ix.recs[j]
			lj := len(tj)
			alpha, ok := alphaByLen[lj]
			if !ok {
				alpha = ix.m.minOverlapPair(li, lj, ix.theta)
				alphaByLen[lj] = alpha
			}
			mn := li
			if lj < mn {
				mn = lj
			}
			if alpha > mn {
				continue // length filter
			}
			// First hit = the pair's smallest shared item (smaller shared
			// items would sit earlier in both prefixes): every other shared
			// item lies after both positions, so the shorter suffix bounds
			// the remaining intersection.
			pj := int(pe.pos)
			rem := li - pi - 1
			if r := lj - pj - 1; r < rem {
				rem = r
			}
			if 1+rem < alpha {
				continue // positional filter
			}
			if inter, full := intersectAtLeast(rec[pi+1:], tj[pj+1:], alpha-1); full && ix.m.Eval(inter+1, li, lj) >= ix.theta {
				row = append(row, j)
			}
		}
	}
	slices.Sort(row)
	return row
}

// rebuild re-ranks every item by (document frequency, item id) ascending and
// reindexes the corpus — the batch buildIndex applied to the accumulated
// stream. Ranks frozen since the last rebuild stay mutually consistent in
// between, so this is purely a performance refresh, never a correctness one.
func (ix *IncIndex) rebuild() {
	uniq := make([]dataset.Item, 0, len(ix.df))
	for it := range ix.df {
		uniq = append(uniq, it)
	}
	sort.Slice(uniq, func(a, b int) bool {
		if ix.df[uniq[a]] != ix.df[uniq[b]] {
			return ix.df[uniq[a]] < ix.df[uniq[b]]
		}
		return uniq[a] < uniq[b]
	})
	for r, it := range uniq {
		ix.rank[it] = int32(r)
	}
	for i, t := range ix.txns {
		rec := ix.recs[i][:0]
		for _, it := range t {
			rec = append(rec, ix.rank[it])
		}
		slices.Sort(rec)
		ix.recs[i] = rec
	}
	counts := make([]int32, len(uniq))
	for _, rec := range ix.recs {
		for _, r := range rec[:ix.prefixLen(len(rec))] {
			counts[r]++
		}
	}
	ix.postings = make([][]posting, len(uniq))
	for r, c := range counts {
		if c > 0 {
			ix.postings[r] = make([]posting, 0, c)
		}
	}
	for i, rec := range ix.recs {
		for p, r := range rec[:ix.prefixLen(len(rec))] {
			ix.postings[r] = append(ix.postings[r], posting{id: int32(i), pos: int32(p)})
		}
	}
}
