package simjoin

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"rock/internal/dataset"
	"rock/internal/links"
	"rock/internal/sim"
)

var allMeasures = []Measure{Jaccard, Dice, Cosine, Overlap}

// brute is the reference: the O(n²) sweep the join must match bit for bit.
func brute(txns []dataset.Transaction, m Measure, theta float64) *links.Neighbors {
	f, ok := sim.TxnByName(m.String())
	if !ok {
		panic("unregistered measure " + m.String())
	}
	return links.ComputeNeighbors(len(txns), sim.ByIndex(txns, f), links.Config{Theta: theta, Workers: 1})
}

// randomCorpus draws n transactions over a vocab of the given size, with a
// slice of deliberately empty transactions and a slice of exact duplicates —
// the edge cases the equivalence contract calls out.
func randomCorpus(rng *rand.Rand, n, vocab, maxItems int) []dataset.Transaction {
	txns := make([]dataset.Transaction, n)
	for i := range txns {
		switch {
		case rng.Float64() < 0.05:
			txns[i] = dataset.Transaction{} // empty
		case i > 0 && rng.Float64() < 0.15:
			txns[i] = txns[rng.Intn(i)].Clone() // duplicate of an earlier one
		default:
			k := 1 + rng.Intn(maxItems)
			items := make([]dataset.Item, k)
			for j := range items {
				items[j] = dataset.Item(rng.Intn(vocab))
			}
			txns[i] = dataset.NewTransaction(items...)
		}
	}
	return txns
}

// TestJoinMatchesBruteForce is the central equivalence property: for random
// corpora × thresholds × all four set measures, the indexed join produces
// exactly the brute-force neighbor lists.
func TestJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	corpora := [][]dataset.Transaction{
		nil,
		{dataset.NewTransaction(1, 2, 3)},
		{{}, {}, {}},
		randomCorpus(rng, 60, 12, 6),    // dense: most pairs overlap
		randomCorpus(rng, 150, 200, 10), // sparse
		randomCorpus(rng, 200, 40, 15),  // mid, bigger baskets
	}
	for ci, txns := range corpora {
		for _, m := range allMeasures {
			for _, theta := range []float64{0, 0.2, 0.5, 0.8, 1} {
				want := brute(txns, m, theta)
				for _, workers := range []int{1, 3} {
					got := Join(txns, m, theta, workers)
					if !reflect.DeepEqual(got.Lists, want.Lists) {
						t.Errorf("corpus %d, %v, theta=%v, workers=%d: lists differ\n got %v\nwant %v",
							ci, m, theta, workers, got.Lists, want.Lists)
					}
				}
			}
		}
	}
}

// TestJoinThetaEdge exercises thresholds landing exactly on attainable
// similarity values, where a >= comparison differs from > by one float ULP:
// the filters must not lose pairs that sit exactly on theta.
func TestJoinThetaEdge(t *testing.T) {
	// Pairs of 4-item transactions sharing 2 items: Jaccard = 2/6, Dice =
	// 4/8, Cosine = 2/4, Overlap = 2/4 — all exactly representable or
	// exactly computed values a user can pass back as theta.
	txns := []dataset.Transaction{
		dataset.NewTransaction(1, 2, 3, 4),
		dataset.NewTransaction(3, 4, 5, 6),
		dataset.NewTransaction(5, 6, 7, 8),
		dataset.NewTransaction(1, 2, 3, 4), // duplicate
	}
	for _, m := range allMeasures {
		for _, theta := range []float64{2.0 / 6, 0.5, 2.0/6 + 1e-16, 0.5 + 1e-16, 1} {
			want := brute(txns, m, theta)
			got := Join(txns, m, theta, 1)
			if !reflect.DeepEqual(got.Lists, want.Lists) {
				t.Errorf("%v theta=%v: got %v want %v", m, theta, got.Lists, want.Lists)
			}
		}
	}
}

// TestSourceRouting checks the engine-selection contract of Source.
func TestSourceRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	txns := randomCorpus(rng, 80, 30, 8)

	// Named measures on normalized data: indexed.
	if !NewSource(txns, sim.Jaccard).Indexed() {
		t.Error("jaccard source not indexed")
	}
	// Nil similarity selects Jaccard (matching rock.Config) and indexes.
	if !NewSource(txns, nil).Indexed() {
		t.Error("nil-similarity source not indexed")
	}
	// A custom similarity function cannot be indexed.
	custom := func(a, b dataset.Transaction) float64 { return sim.Jaccard(a, b) }
	if NewSource(txns, custom).Indexed() {
		t.Error("custom similarity claimed indexed")
	}
	// Unnormalized transactions force brute force.
	bad := append([]dataset.Transaction{{3, 1, 2}}, txns...)
	if NewSource(bad, sim.Jaccard).Indexed() {
		t.Error("unnormalized corpus claimed indexed")
	}

	// Whatever the routing decision, results match brute force — including
	// below MinIndexTheta, where the source itself switches engines.
	for _, theta := range []float64{0, MinIndexTheta / 2, 0.4, 0.9} {
		for _, f := range []sim.TxnFunc{sim.Jaccard, sim.Dice, custom} {
			want := links.ComputeNeighbors(len(txns), sim.ByIndex(txns, f), links.Config{Theta: theta, Workers: 1})
			got := NewSource(txns, f).ComputeNeighbors(links.Config{Theta: theta})
			if !reflect.DeepEqual(got.Lists, want.Lists) {
				t.Errorf("theta=%v: source lists differ from brute force", theta)
			}
		}
	}
}

// TestMinOverlapBounds verifies the filter bounds against exhaustive
// evaluation of the float predicate they are derived from.
func TestMinOverlapBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		m := allMeasures[rng.Intn(len(allMeasures))]
		la, lb := rng.Intn(30), rng.Intn(30)
		theta := rng.Float64()
		mn := la
		if lb < mn {
			mn = lb
		}
		want := mn + 1
		for i := 0; i <= mn; i++ {
			if m.Eval(i, la, lb) >= theta {
				want = i
				break
			}
		}
		if got := m.minOverlapPair(la, lb, theta); got != want {
			t.Fatalf("%v minOverlapPair(%d,%d,%v) = %d, want %d", m, la, lb, theta, got, want)
		}
		wantAny := la + 1
		for i := 0; i <= la; i++ {
			if m.Eval(i, la, i) >= theta {
				wantAny = i
				break
			}
		}
		if got := m.minOverlapAny(la, theta); got != wantAny {
			t.Fatalf("%v minOverlapAny(%d,%v) = %d, want %d", m, la, theta, got, wantAny)
		}
	}
}

// TestEvalMatchesSimPackage pins Measure.Eval to the sim package functions
// it mirrors: same intersection, same lengths, same float64 result.
func TestEvalMatchesSimPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		a := randomCorpus(rng, 1, 25, 12)[0]
		b := randomCorpus(rng, 1, 25, 12)[0]
		inter := a.IntersectLen(b)
		for _, m := range allMeasures {
			f, _ := sim.TxnByName(m.String())
			if got, want := m.Eval(inter, len(a), len(b)), f(a, b); got != want {
				t.Fatalf("%v: Eval=%v sim=%v (a=%v b=%v)", m, got, want, a, b)
			}
		}
	}
}

func TestMeasureByName(t *testing.T) {
	for _, m := range allMeasures {
		got, ok := MeasureByName(m.String())
		if !ok || got != m {
			t.Errorf("MeasureByName(%q) = %v, %v", m.String(), got, ok)
		}
		if _, ok := sim.TxnByName(m.String()); !ok {
			t.Errorf("measure %q not in sim registry", m.String())
		}
	}
	if _, ok := MeasureByName("euclidean"); ok {
		t.Error("unknown name resolved")
	}
}

// TestJoinLargerRandom runs a bigger randomized sweep so the prefix,
// length and positional filters all actually fire (it fails loudly if any
// of them over-prunes).
func TestJoinLargerRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("larger randomized equivalence sweep")
	}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		txns := randomCorpus(rng, 400, 60, 20)
		for _, m := range allMeasures {
			theta := 0.1 + 0.85*rng.Float64()
			want := brute(txns, m, theta)
			got := Join(txns, m, theta, 2)
			if !reflect.DeepEqual(got.Lists, want.Lists) {
				t.Errorf("seed=%d %v theta=%v: lists differ", seed, m, theta)
			}
		}
	}
}

func ExampleJoin() {
	txns := []dataset.Transaction{
		dataset.NewTransaction(1, 2, 3),
		dataset.NewTransaction(1, 2, 4),
		dataset.NewTransaction(5, 6),
	}
	nb := Join(txns, Jaccard, 0.5, 1)
	fmt.Println(nb.Lists[0], nb.Lists[1], nb.Lists[2])
	// Output: [1] [0] []
}
