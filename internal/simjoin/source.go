package simjoin

import (
	"rock/internal/dataset"
	"rock/internal/links"
	"rock/internal/sim"
)

// MinIndexTheta is the smallest threshold for which the indexed join is
// selected. Below it the length and prefix filters prune almost nothing
// (for a typical basket of 15 items, theta = 0.05 already forces a
// full-length prefix), so the brute-force sweep — with no index build, no
// candidate deduplication — is the better engine; and at exactly 0 the
// index is wrong, since even pairs sharing no item qualify.
const MinIndexTheta = 0.05

// Source computes neighbor lists for a transaction corpus, selecting the
// inverted-index threshold join when it applies and the brute-force
// pairwise sweep otherwise. It implements links.NeighborSource, which is
// how rock.ClusterTransactions and the pipeline pick the indexed path
// without the core clustering code knowing about transactions at all.
type Source struct {
	txns    []dataset.Transaction
	f       sim.TxnFunc
	measure Measure
	indexed bool
}

// NewSource builds a neighbor source for the corpus under similarity f
// (nil selects Jaccard, matching rock.Config). The indexed engine is used
// when f is one of the registered set measures and every transaction is
// normalized; custom similarity functions fall back to brute force, which
// accepts anything.
func NewSource(txns []dataset.Transaction, f sim.TxnFunc) *Source {
	if f == nil {
		f = sim.Jaccard
	}
	s := &Source{txns: txns, f: f}
	if m, ok := MeasureOf(f); ok && allNormalized(txns) {
		s.measure = m
		s.indexed = true
	}
	return s
}

// Indexed reports whether the corpus and similarity admit the indexed join
// (the threshold still decides per call; see MinIndexTheta).
func (s *Source) Indexed() bool { return s.indexed }

// ComputeNeighbors returns the theta-neighbor lists, bit-identical to the
// brute-force path whichever engine runs.
func (s *Source) ComputeNeighbors(cfg links.Config) *links.Neighbors {
	if s.indexed && cfg.Theta >= MinIndexTheta {
		return Join(s.txns, s.measure, cfg.Theta, cfg.Workers)
	}
	return links.ComputeNeighbors(len(s.txns), sim.ByIndex(s.txns, s.f), cfg)
}

// allNormalized reports whether every transaction is sorted and duplicate-
// free — the precondition for the merge intersections of the indexed join.
// The check is one linear pass, negligible next to either join engine.
func allNormalized(txns []dataset.Transaction) bool {
	for _, t := range txns {
		if !t.IsNormalized() {
			return false
		}
	}
	return true
}
