// Package simjoin implements an exact similarity threshold join over
// transaction corpora: given a set similarity measure and a threshold theta,
// it produces, for every transaction, the list of transactions with
// sim >= theta — the neighbor lists of Section 3.1 of the ROCK paper —
// without evaluating all n(n-1)/2 pairs.
//
// The engine is the classic inverted-index join (AllPairs/PPJoin family):
// items are remapped so the rarest item sorts first, every record is indexed
// only on a short prefix, and candidate pairs pass a length filter, a prefix
// filter and a positional upper bound before an early-exit merge intersection
// verifies them. All filters are derived from the *same floating-point
// predicate* the brute-force path evaluates (sim(a, b) >= theta as computed
// by internal/sim), so the output is bit-identical to links.ComputeNeighbors
// for every input — the filters only ever discard pairs whose exact
// similarity provably fails the predicate.
package simjoin

import (
	"math"
	"sort"

	"rock/internal/sim"
)

// Measure identifies one of the set-theoretic transaction similarities of
// Section 3.1 that the indexed join supports.
type Measure int8

const (
	// Jaccard is |a ∩ b| / |a ∪ b| (the paper's measure).
	Jaccard Measure = iota
	// Dice is 2|a ∩ b| / (|a| + |b|).
	Dice
	// Cosine is |a ∩ b| / sqrt(|a| · |b|).
	Cosine
	// Overlap is |a ∩ b| / min(|a|, |b|).
	Overlap

	numMeasures
)

// measureByName maps the sim package's registered similarity names to
// measures. Keeping the mapping by name (rather than by function value) ties
// the join to the same registry that model snapshots use.
var measureByName = map[string]Measure{
	"jaccard": Jaccard,
	"dice":    Dice,
	"cosine":  Cosine,
	"overlap": Overlap,
}

// MeasureByName resolves a registered similarity name to a join measure.
func MeasureByName(name string) (Measure, bool) {
	m, ok := measureByName[name]
	return m, ok
}

// MeasureOf identifies the join measure of a transaction similarity
// function, when it is one of the named sim-package measures.
func MeasureOf(f sim.TxnFunc) (Measure, bool) {
	return MeasureByName(sim.NameOf(f))
}

// Eval computes the similarity of a pair with intersection size inter and
// transaction sizes la, lb. Each case mirrors the corresponding function in
// internal/sim operation for operation, so the float64 result is bit-equal
// to what the brute-force path computes for the same pair.
func (m Measure) Eval(inter, la, lb int) float64 {
	switch m {
	case Jaccard:
		union := la + lb - inter
		if union == 0 {
			return 0
		}
		return float64(inter) / float64(union)
	case Dice:
		if la+lb == 0 {
			return 0
		}
		return 2 * float64(inter) / float64(la+lb)
	case Cosine:
		if la == 0 || lb == 0 {
			return 0
		}
		return float64(inter) / math.Sqrt(float64(la)*float64(lb))
	default: // Overlap
		mn := la
		if lb < mn {
			mn = lb
		}
		if mn == 0 {
			return 0
		}
		return float64(inter) / float64(mn)
	}
}

// minOverlapPair returns the smallest intersection size I in [0, min(la,lb)]
// with Eval(I, la, lb) >= theta, or min(la,lb)+1 when no I qualifies (the
// pair cannot be neighbors regardless of content — this is the length
// filter). For every measure Eval is monotone nondecreasing in I (integer
// numerators convert exactly and IEEE division/sqrt round monotonically), so
// binary search over the predicate is exact.
//
// Because the bound is defined directly by the float predicate — not by a
// rounded closed-form formula — any pair whose true intersection falls below
// it provably fails sim >= theta under the brute-force arithmetic too.
func (m Measure) minOverlapPair(la, lb int, theta float64) int {
	mn := la
	if lb < mn {
		mn = lb
	}
	return sort.Search(mn+1, func(i int) bool { return m.Eval(i, la, lb) >= theta })
}

// minOverlapAny returns the smallest intersection size the record of length
// l must share with *any* partner for the pair to possibly reach theta. For
// a fixed I the similarity is maximized by the shortest admissible partner
// (length I, when the partner is a subset), so the bound is the smallest I
// with Eval(I, l, I) >= theta. It determines the prefix length
// l - minOverlapAny + 1: a qualifying pair must share an item within both
// records' prefixes.
func (m Measure) minOverlapAny(l int, theta float64) int {
	return sort.Search(l+1, func(i int) bool { return m.Eval(i, l, i) >= theta })
}
