package simjoin

import (
	"math/bits"
	"runtime"
	"slices"
	"sort"
	"sync"

	"rock/internal/dataset"
	"rock/internal/links"
	"rock/internal/sim"
)

// posting is one prefix-index entry: record id and the position of the
// indexed item within the record's frequency-remapped item array.
type posting struct {
	id  int32
	pos int32
}

// Join computes the theta-neighbor lists of the corpus under measure m using
// the inverted-index threshold join. The result is bit-identical to
//
//	links.ComputeNeighbors(len(txns), sim.ByIndex(txns, f), cfg)
//
// for the corresponding similarity f. Transactions must be normalized
// (sorted, duplicate-free) — Source checks this and falls back to brute
// force otherwise. theta <= 0 defeats every filter (any pair, even two empty
// transactions, qualifies), so that case is delegated to the brute-force
// path as well.
func Join(txns []dataset.Transaction, m Measure, theta float64, workers int) *links.Neighbors {
	if theta <= 0 {
		return bruteForce(txns, m, theta, workers)
	}
	n := len(txns)
	lists := make([][]int32, n)
	if n > 1 {
		ix := buildIndex(txns, m, theta)
		w := workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w > n {
			w = n
		}
		if w <= 1 {
			probeStripe(ix, m, theta, 0, 1, lists)
		} else {
			var wg sync.WaitGroup
			for g := 0; g < w; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					probeStripe(ix, m, theta, g, w, lists)
				}(g)
			}
			wg.Wait()
		}
	}
	links.Mirror(lists)
	return &links.Neighbors{Lists: lists}
}

// bruteForce is the exact fallback used when theta prunes nothing.
func bruteForce(txns []dataset.Transaction, m Measure, theta float64, workers int) *links.Neighbors {
	f, _ := sim.TxnByName(m.String())
	return links.ComputeNeighbors(len(txns), sim.ByIndex(txns, f), links.Config{Theta: theta, Workers: workers})
}

// String returns the sim-package registry name of the measure.
func (m Measure) String() string {
	switch m {
	case Jaccard:
		return "jaccard"
	case Dice:
		return "dice"
	case Cosine:
		return "cosine"
	default:
		return "overlap"
	}
}

// index is the immutable shared state the probe workers read.
type index struct {
	recs     [][]int32 // per record: item ranks, sorted ascending (rarest first)
	beta     []int32   // per record length: minOverlapAny
	postings [][]posting
}

// buildIndex remaps items by ascending document frequency and indexes every
// record on its filter prefix.
//
// The remap does double duty: prefixes hold each record's *rarest* items, so
// posting lists stay short exactly where they are probed most, and items
// common across natural clusters (high document frequency) sort to the ends
// of records where the prefix filter never touches them.
func buildIndex(txns []dataset.Transaction, m Measure, theta float64) *index {
	n := len(txns)

	// Document frequency per item. Transactions are duplicate-free, so each
	// record contributes at most 1 per item.
	df := make(map[dataset.Item]int32)
	maxLen := 0
	for _, t := range txns {
		if len(t) > maxLen {
			maxLen = len(t)
		}
		for _, it := range t {
			df[it]++
		}
	}

	// Rank items by (frequency, item id) ascending; ties broken by id keep
	// the remap deterministic.
	uniq := make([]dataset.Item, 0, len(df))
	for it := range df {
		uniq = append(uniq, it)
	}
	sort.Slice(uniq, func(a, b int) bool {
		if df[uniq[a]] != df[uniq[b]] {
			return df[uniq[a]] < df[uniq[b]]
		}
		return uniq[a] < uniq[b]
	})
	rank := make(map[dataset.Item]int32, len(uniq))
	for r, it := range uniq {
		rank[it] = int32(r)
	}

	ix := &index{recs: make([][]int32, n), beta: make([]int32, maxLen+1)}
	flat := make([]int32, 0, totalItems(txns))
	for i, t := range txns {
		start := len(flat)
		for _, it := range t {
			flat = append(flat, rank[it])
		}
		rec := flat[start:len(flat):len(flat)]
		slices.Sort(rec)
		ix.recs[i] = rec
	}
	for l := 1; l <= maxLen; l++ {
		ix.beta[l] = int32(m.minOverlapAny(l, theta))
	}

	// Exact-size posting lists: count prefix items, then fill in record-id
	// order so every list is sorted by id (the probe binary-searches on it).
	counts := make([]int32, len(uniq))
	for i, rec := range ix.recs {
		for _, r := range rec[:prefixLen(ix, i)] {
			counts[r]++
		}
	}
	ix.postings = make([][]posting, len(uniq))
	for r, c := range counts {
		if c > 0 {
			ix.postings[r] = make([]posting, 0, c)
		}
	}
	for i, rec := range ix.recs {
		for p, r := range rec[:prefixLen(ix, i)] {
			ix.postings[r] = append(ix.postings[r], posting{id: int32(i), pos: int32(p)})
		}
	}
	return ix
}

// prefixLen returns the filter-prefix length of record i: a pair reaching
// theta must share an item within both records' prefixes, so only these
// positions are indexed and probed. Empty records have no prefix.
func prefixLen(ix *index, i int) int {
	l := len(ix.recs[i])
	if l == 0 {
		return 0
	}
	return l - int(ix.beta[l]) + 1
}

func totalItems(txns []dataset.Transaction) int {
	s := 0
	for _, t := range txns {
		s += len(t)
	}
	return s
}

// probeStripe fills lists[i] with the verified neighbors j > i for every
// record i in the worker's stripe. Rows are disjoint across workers, so no
// synchronization is needed; links.Mirror completes the lists afterwards.
func probeStripe(ix *index, m Measure, theta float64, g, w int, lists [][]int32) {
	n := len(ix.recs)
	// seen deduplicates candidates within one probe: a pair sharing k prefix
	// items would otherwise be generated k times. alphaByLen memoizes the
	// per-length minimum-overlap bound across one probe (stamped, so neither
	// array is cleared between records).
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	alphaByLen := make([]int32, len(ix.beta))
	alphaStamp := make([]int32, len(ix.beta))
	for i := range alphaStamp {
		alphaStamp[i] = -1
	}
	// Verified neighbors are collected in a bitmap and extracted in id
	// order afterwards — cheaper than sorting each row, and the extraction
	// scan doubles as the reset.
	found := make([]uint64, (n+63)/64)

	for i := g; i < n; i += w {
		ti := ix.recs[i]
		li := len(ti)
		if li == 0 {
			continue
		}
		cnt := 0
		self := int32(i)
		for pi, r := range ti[:prefixLen(ix, i)] {
			pl := ix.postings[r]
			// Pairs are generated once, by the smaller id; entries are
			// sorted by id, so binary-search straight past j <= i.
			lo, hi := 0, len(pl)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if pl[mid].id <= self {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			for _, pe := range pl[lo:] {
				j := pe.id
				if seen[j] == self {
					continue
				}
				seen[j] = self
				tj := ix.recs[j]
				lj := len(tj)
				var alpha int
				if alphaStamp[lj] == self {
					alpha = int(alphaByLen[lj])
				} else {
					alpha = m.minOverlapPair(li, lj, theta)
					alphaByLen[lj] = int32(alpha)
					alphaStamp[lj] = self
				}
				mn := li
				if lj < mn {
					mn = lj
				}
				if alpha > mn {
					continue // length filter: no intersection size suffices
				}
				// This hit is the pair's smallest shared item — a smaller
				// one would sit earlier in both prefixes and have been hit
				// first. So every other shared item lies after both
				// positions: bound the intersection by the shorter suffix
				// (positional filter), and on survival count only the
				// suffixes, with the hit contributing 1.
				pj := int(pe.pos)
				rem := li - pi - 1
				if r := lj - pj - 1; r < rem {
					rem = r
				}
				if 1+rem < alpha {
					continue
				}
				if inter, full := intersectAtLeast(ti[pi+1:], tj[pj+1:], alpha-1); full && m.Eval(inter+1, li, lj) >= theta {
					found[j>>6] |= 1 << (uint(j) & 63)
					cnt++
				}
			}
		}
		if cnt == 0 {
			continue
		}
		row := make([]int32, 0, cnt)
		for w := i >> 6; len(row) < cnt; w++ {
			x := found[w]
			if x == 0 {
				continue
			}
			found[w] = 0
			base := int32(w << 6)
			for ; x != 0; x &= x - 1 {
				row = append(row, base+int32(bits.TrailingZeros64(x)))
			}
		}
		lists[i] = row
	}
}

// intersectAtLeast merge-intersects two sorted rank arrays, abandoning as
// soon as the intersection provably cannot reach alpha. It returns the exact
// intersection size and full=true when the merge ran to completion; on early
// exit full is false and the pair is known to fail the threshold. alpha may
// be <= 0, in which case the merge always completes.
// The caller guarantees the bound holds on entry (the positional filter);
// matches never shrink it, so it is re-checked only when a mismatch consumes
// an element from one side.
func intersectAtLeast(a, b []int32, alpha int) (inter int, full bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
			if inter+len(a)-i < alpha {
				return 0, false
			}
		case a[i] > b[j]:
			j++
			if inter+len(b)-j < alpha {
				return 0, false
			}
		default:
			inter++
			i++
			j++
		}
	}
	return inter, true
}
