package simjoin

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"rock/internal/dataset"
)

// incCorpus draws a clustered corpus with the pathologies the index must
// handle: empty transactions, exact duplicates, singletons, and items whose
// document frequencies shift over the stream (so the frozen-rank order and
// the DF order genuinely diverge between rebuilds).
func incCorpus(rng *rand.Rand, n int) []dataset.Transaction {
	txns := make([]dataset.Transaction, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i%17 == 0:
			txns = append(txns, dataset.Transaction{})
		case i%13 == 0 && len(txns) > 1:
			// Exact duplicate of an earlier transaction.
			txns = append(txns, txns[rng.Intn(len(txns))])
		default:
			// Clustered draw: a base of shared items plus noise. Later
			// clusters use higher item ids, shifting frequencies over time.
			cl := rng.Intn(4)
			sz := 1 + rng.Intn(8)
			t := make(dataset.Transaction, 0, sz)
			for k := 0; k < sz; k++ {
				if rng.Intn(3) == 0 {
					t = append(t, dataset.Item(200+rng.Intn(40))) // global noise
				} else {
					t = append(t, dataset.Item(cl*20+rng.Intn(12)))
				}
			}
			t.Normalize()
			txns = append(txns, t)
		}
	}
	return txns
}

// TestIncIndexMatchesBatchAtEveryPrefix is the incremental-vs-batch
// equivalence property: inserting transactions one at a time must yield
// neighbor lists bit-identical to rebuilding the batch index from scratch at
// every prefix of the stream — across measures, thresholds (including the
// brute-force fallback band), and corpora with empties and duplicates.
func TestIncIndexMatchesBatchAtEveryPrefix(t *testing.T) {
	measures := []Measure{Jaccard, Dice, Cosine, Overlap}
	thetas := []float64{0.01, 0.3, 0.5, 0.8} // 0.01 < MinIndexTheta: brute path
	for _, m := range measures {
		for _, theta := range thetas {
			m, theta := m, theta
			t.Run(fmt.Sprintf("%s/theta=%v", m, theta), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(int64(m)*1000 + int64(theta*100)))
				// 150 crosses the rebuild thresholds at 64 and 128, so both
				// frozen-rank epochs and the re-rank path are exercised.
				txns := incCorpus(rng, 150)
				inc := NewIncIndex(m, theta)
				for i, txn := range txns {
					id, row := inc.Insert(txn)
					if int(id) != i {
						t.Fatalf("insert %d returned id %d", i, id)
					}
					want := Join(txns[:i+1], m, theta, 1)
					got := inc.Neighbors()
					if !reflect.DeepEqual(got.Lists, want.Lists) {
						t.Fatalf("prefix %d: incremental lists diverge from batch join\ngot  %v\nwant %v",
							i+1, got.Lists, want.Lists)
					}
					if !reflect.DeepEqual(row, want.Lists[i]) {
						t.Fatalf("prefix %d: Insert returned %v, batch row is %v", i+1, row, want.Lists[i])
					}
				}
			})
		}
	}
}

// TestIncIndexUnnormalizedInput checks that Insert normalizes a copy without
// mutating the caller's transaction.
func TestIncIndexUnnormalizedInput(t *testing.T) {
	inc := NewIncIndex(Jaccard, 0.5)
	inc.Insert(dataset.Transaction{3, 1, 2})
	raw := dataset.Transaction{2, 3, 3, 1}
	_, row := inc.Insert(raw)
	if !reflect.DeepEqual(raw, dataset.Transaction{2, 3, 3, 1}) {
		t.Fatalf("Insert mutated its argument: %v", raw)
	}
	if !reflect.DeepEqual(row, []int32{0}) {
		t.Fatalf("normalized duplicate should match record 0, got %v", row)
	}
	if got := inc.Txn(1); !got.IsNormalized() {
		t.Fatalf("stored transaction not normalized: %v", got)
	}
}
