// Package apriori implements level-wise frequent-itemset mining (Agrawal &
// Srikant's Apriori). It is the first half of the association-rule
// hypergraph clustering baseline of [HKKM97], which the ROCK paper's
// Section 2 discusses and refutes with a counterexample; the second half is
// package hypergraph.
package apriori

import (
	"sort"

	"rock/internal/dataset"
)

// Frequent is a frequent itemset with its absolute support count.
type Frequent struct {
	Items   dataset.Transaction
	Support int
}

// Config controls the miner.
type Config struct {
	// MinSupport is the minimum absolute support (transaction count).
	MinSupport int
	// MaxLen bounds itemset size; zero means unbounded.
	MaxLen int
}

// Mine returns all frequent itemsets of the transaction database, in
// increasing size order, each sorted lexicographically.
func Mine(txns []dataset.Transaction, cfg Config) []Frequent {
	if cfg.MinSupport < 1 {
		cfg.MinSupport = 1
	}

	// L1: frequent single items.
	counts := make(map[dataset.Item]int)
	for _, t := range txns {
		for _, it := range t {
			counts[it]++
		}
	}
	var level []Frequent
	for it, c := range counts {
		if c >= cfg.MinSupport {
			level = append(level, Frequent{Items: dataset.Transaction{it}, Support: c})
		}
	}
	sortFrequent(level)

	var out []Frequent
	out = append(out, level...)
	k := 1
	for len(level) > 0 {
		k++
		if cfg.MaxLen > 0 && k > cfg.MaxLen {
			break
		}
		cands := candidates(level)
		if len(cands) == 0 {
			break
		}
		next := countAndFilter(txns, cands, cfg.MinSupport)
		out = append(out, next...)
		level = next
	}
	return out
}

// candidates joins frequent (k-1)-itemsets sharing a (k-2)-prefix and
// prunes candidates with an infrequent subset (the Apriori property).
func candidates(level []Frequent) []dataset.Transaction {
	have := make(map[string]bool, len(level))
	for _, f := range level {
		have[key(f.Items)] = true
	}
	var cands []dataset.Transaction
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i].Items, level[j].Items
			if !samePrefix(a, b) {
				// level is sorted, so once prefixes diverge no later j
				// matches either.
				break
			}
			c := append(append(dataset.Transaction{}, a...), b[len(b)-1])
			if allSubsetsFrequent(c, have) {
				cands = append(cands, c)
			}
		}
	}
	return cands
}

func samePrefix(a, b dataset.Transaction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return a[len(a)-1] < b[len(b)-1]
}

// allSubsetsFrequent checks every (k-1)-subset of c against the previous
// level.
func allSubsetsFrequent(c dataset.Transaction, have map[string]bool) bool {
	sub := make(dataset.Transaction, 0, len(c)-1)
	for skip := range c {
		sub = sub[:0]
		for i, it := range c {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if !have[key(sub)] {
			return false
		}
	}
	return true
}

func countAndFilter(txns []dataset.Transaction, cands []dataset.Transaction, minSupport int) []Frequent {
	counts := make([]int, len(cands))
	for _, t := range txns {
		for ci, c := range cands {
			if t.IntersectLen(c) == len(c) {
				counts[ci]++
			}
		}
	}
	var out []Frequent
	for ci, c := range cands {
		if counts[ci] >= minSupport {
			out = append(out, Frequent{Items: c, Support: counts[ci]})
		}
	}
	sortFrequent(out)
	return out
}

func sortFrequent(fs []Frequent) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Items, fs[j].Items
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

func key(t dataset.Transaction) string {
	b := make([]byte, 0, 4*len(t))
	for _, it := range t {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

// SupportIndex builds a lookup from itemset to support over the mined
// result, used for rule-confidence computations.
type SupportIndex map[string]int

// NewSupportIndex indexes mined itemsets.
func NewSupportIndex(fs []Frequent) SupportIndex {
	idx := make(SupportIndex, len(fs))
	for _, f := range fs {
		idx[key(f.Items)] = f.Support
	}
	return idx
}

// Support returns the support of itemset s, or 0 if it was not frequent.
func (idx SupportIndex) Support(s dataset.Transaction) int { return idx[key(s)] }

// AvgRuleConfidence computes the average confidence of all association
// rules X → (e \ X) with nonempty X ⊂ e, the hyperedge weight of [HKKM97].
// Subset supports missing from the index (possible only if e itself is
// infrequent) make the rule count as zero confidence.
func AvgRuleConfidence(e dataset.Transaction, idx SupportIndex) float64 {
	supE := idx.Support(e)
	if supE == 0 || len(e) < 2 {
		return 0
	}
	var sum float64
	rules := 0
	// Enumerate proper nonempty subsets X of e as antecedents.
	n := len(e)
	for mask := 1; mask < (1<<n)-1; mask++ {
		x := make(dataset.Transaction, 0, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				x = append(x, e[i])
			}
		}
		rules++
		if supX := idx.Support(x); supX > 0 {
			sum += float64(supE) / float64(supX)
		}
	}
	if rules == 0 {
		return 0
	}
	return sum / float64(rules)
}
