package apriori

import (
	"math/rand"
	"testing"

	"rock/internal/dataset"
)

func tx(items ...dataset.Item) dataset.Transaction { return dataset.NewTransaction(items...) }

func TestMineTextbookExample(t *testing.T) {
	// Classic 4-transaction example.
	txns := []dataset.Transaction{
		tx(1, 3, 4),
		tx(2, 3, 5),
		tx(1, 2, 3, 5),
		tx(2, 5),
	}
	fs := Mine(txns, Config{MinSupport: 2})
	idx := NewSupportIndex(fs)
	want := map[string]int{
		"{1}":       2,
		"{2}":       3,
		"{3}":       3,
		"{5}":       3,
		"{1, 3}":    2,
		"{2, 3}":    2,
		"{2, 5}":    3,
		"{3, 5}":    2,
		"{2, 3, 5}": 2,
	}
	if len(fs) != len(want) {
		t.Fatalf("mined %d itemsets, want %d: %v", len(fs), len(want), fs)
	}
	for _, f := range fs {
		if want[f.Items.String()] != f.Support {
			t.Errorf("support(%v) = %d, want %d", f.Items, f.Support, want[f.Items.String()])
		}
	}
	if idx.Support(tx(2, 3, 5)) != 2 {
		t.Error("index lookup failed")
	}
	if idx.Support(tx(1, 5)) != 0 {
		t.Error("infrequent itemset has support in index")
	}
}

func TestMineMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		txns := make([]dataset.Transaction, 30)
		for i := range txns {
			items := make([]dataset.Item, 1+rng.Intn(5))
			for j := range items {
				items[j] = dataset.Item(rng.Intn(8))
			}
			txns[i] = dataset.NewTransaction(items...)
		}
		minSup := 2 + rng.Intn(4)
		fs := Mine(txns, Config{MinSupport: minSup})
		got := make(map[string]int)
		for _, f := range fs {
			got[f.Items.String()] = f.Support
		}
		// Brute force over all itemsets of the 8-item universe.
		for mask := 1; mask < 256; mask++ {
			var set dataset.Transaction
			for b := 0; b < 8; b++ {
				if mask&(1<<b) != 0 {
					set = append(set, dataset.Item(b))
				}
			}
			sup := 0
			for _, t2 := range txns {
				if t2.IntersectLen(set) == len(set) {
					sup++
				}
			}
			key := set.String()
			if sup >= minSup {
				if got[key] != sup {
					t.Fatalf("trial %d: support(%v) = %d, want %d", trial, set, got[key], sup)
				}
			} else if _, ok := got[key]; ok {
				t.Fatalf("trial %d: infrequent %v reported", trial, set)
			}
		}
	}
}

func TestMineMaxLen(t *testing.T) {
	txns := []dataset.Transaction{tx(1, 2, 3), tx(1, 2, 3), tx(1, 2, 3)}
	fs := Mine(txns, Config{MinSupport: 2, MaxLen: 2})
	for _, f := range fs {
		if len(f.Items) > 2 {
			t.Fatalf("itemset %v exceeds MaxLen", f.Items)
		}
	}
}

func TestMineEmptyAndMinSupportFloor(t *testing.T) {
	if fs := Mine(nil, Config{MinSupport: 0}); len(fs) != 0 {
		t.Fatal("mining nothing should yield nothing")
	}
}

func TestAvgRuleConfidence(t *testing.T) {
	// supports: {1}=4, {2}=2, {1,2}=2.
	txns := []dataset.Transaction{
		tx(1), tx(1), tx(1, 2), tx(1, 2),
	}
	fs := Mine(txns, Config{MinSupport: 1})
	idx := NewSupportIndex(fs)
	// Rules on {1,2}: 1->2 conf 2/4, 2->1 conf 2/2. Average 0.75.
	got := AvgRuleConfidence(tx(1, 2), idx)
	if got != 0.75 {
		t.Fatalf("avg confidence = %v, want 0.75", got)
	}
	if AvgRuleConfidence(tx(1), idx) != 0 {
		t.Fatal("singleton should have no rules")
	}
	if AvgRuleConfidence(tx(7, 8), idx) != 0 {
		t.Fatal("infrequent edge should weigh 0")
	}
}
