package birch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCFAlgebra(t *testing.T) {
	a := NewCF([]float64{1, 2})
	b := NewCF([]float64{3, 4})
	a.Add(b)
	if a.N != 2 || a.LS[0] != 4 || a.LS[1] != 6 {
		t.Fatalf("merged CF = %+v", a)
	}
	wantSS := 1.0 + 4 + 9 + 16
	if a.SS != wantSS {
		t.Fatalf("SS = %v, want %v", a.SS, wantSS)
	}
	c := a.Centroid()
	if c[0] != 2 || c[1] != 3 {
		t.Fatalf("centroid = %v", c)
	}
}

// Property: the CF radius equals the directly computed RMS distance from
// the centroid, for random point sets.
func TestCFRadiusMatchesDirectQuick(t *testing.T) {
	f := func(raw [6][2]float64) bool {
		var cf CF
		pts := make([][]float64, 0, len(raw))
		for _, p := range raw {
			q := []float64{clamp(p[0]), clamp(p[1])}
			pts = append(pts, q)
			cf.Add(NewCF(q))
		}
		c := cf.Centroid()
		var s float64
		for _, p := range pts {
			for d := range p {
				diff := p[d] - c[d]
				s += diff * diff
			}
		}
		want := math.Sqrt(s / float64(len(pts)))
		return math.Abs(cf.Radius()-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 100)
}

func TestCentroidDist2(t *testing.T) {
	a := NewCF([]float64{0, 0})
	b := NewCF([]float64{3, 4})
	if got := CentroidDist2(&a, &b); got != 25 {
		t.Fatalf("dist2 = %v, want 25", got)
	}
}

func blobs(rng *rand.Rand, centers [][]float64, per int, noise float64) ([][]float64, []int) {
	var vecs [][]float64
	var labels []int
	for c, ctr := range centers {
		for i := 0; i < per; i++ {
			v := make([]float64, len(ctr))
			for d := range v {
				v[d] = ctr[d] + rng.NormFloat64()*noise
			}
			vecs = append(vecs, v)
			labels = append(labels, c)
		}
	}
	return vecs, labels
}

func TestBirchSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vecs, labels := blobs(rng, [][]float64{{0, 0}, {20, 0}, {0, 20}}, 80, 0.6)
	res, err := Cluster(vecs, Config{K: 3, Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	for _, c := range res.Clusters {
		l := labels[c[0]]
		for _, p := range c {
			if labels[p] != l {
				t.Fatal("mixed cluster")
			}
		}
	}
	// The CF-tree must have compressed the points into far fewer entries.
	if res.LeafEntries >= len(vecs) {
		t.Errorf("no compression: %d entries for %d points", res.LeafEntries, len(vecs))
	}
}

func TestBirchRebuildGrowsThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vecs, _ := blobs(rng, [][]float64{{0, 0}}, 600, 3.0)
	res, err := Cluster(vecs, Config{K: 1, Threshold: 0.01, MaxLeafEntries: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Threshold <= 0.01 {
		t.Errorf("threshold did not grow: %v", res.Threshold)
	}
	if res.LeafEntries > 33 {
		t.Errorf("leaf entries %d exceed the budget", res.LeafEntries)
	}
	total := 0
	for _, c := range res.Clusters {
		total += len(c)
	}
	if total != len(vecs) {
		t.Fatalf("clusters cover %d of %d points", total, len(vecs))
	}
}

func TestBirchAssignConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vecs, _ := blobs(rng, [][]float64{{0, 0}, {9, 9}}, 50, 0.5)
	res, err := Cluster(vecs, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	for c, members := range res.Clusters {
		for _, p := range members {
			if res.Assign[p] >= len(res.Clusters) {
				t.Fatal("assign out of range")
			}
			_ = c
		}
	}
	// Every point appears in exactly one cluster.
	seen := map[int]bool{}
	for _, c := range res.Clusters {
		for _, p := range c {
			if seen[p] {
				t.Fatal("point in two clusters")
			}
			seen[p] = true
		}
	}
	if len(seen) != len(vecs) {
		t.Fatal("not a partition")
	}
}

func TestBirchValidation(t *testing.T) {
	if _, err := Cluster(nil, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	res, err := Cluster(nil, Config{K: 2})
	if err != nil || len(res.Clusters) != 0 {
		t.Errorf("empty input: %v %v", res, err)
	}
}

func TestTreeInsertAbsorbsWithinThreshold(t *testing.T) {
	tree := NewTree(Config{Threshold: 10})
	a := tree.insertCF(NewCF([]float64{0, 0}))
	b := tree.insertCF(NewCF([]float64{1, 0}))
	if a != b {
		t.Fatalf("nearby points should share an entry: %d vs %d", a, b)
	}
	c := tree.insertCF(NewCF([]float64{1000, 0}))
	if c == a {
		t.Fatal("distant point absorbed")
	}
	if tree.NumEntries() != 2 {
		t.Fatalf("entries = %d", tree.NumEntries())
	}
}

func TestTreeSplitsAtCapacity(t *testing.T) {
	tree := NewTree(Config{Threshold: 0.1, LeafCapacity: 4, Branching: 3})
	for i := 0; i < 64; i++ {
		tree.insertCF(NewCF([]float64{float64(i * 10)}))
	}
	if tree.NumEntries() != 64 {
		t.Fatalf("entries = %d, want 64 distinct", tree.NumEntries())
	}
	// The collected entries must preserve every inserted centroid.
	entries := tree.leafEntries()
	seen := map[int]bool{}
	for _, e := range entries {
		seen[int(e.Centroid()[0])] = true
	}
	for i := 0; i < 64; i++ {
		if !seen[i*10] {
			t.Fatalf("centroid %d lost in splits", i*10)
		}
	}
}
