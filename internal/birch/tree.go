package birch

import (
	"errors"
	"math"
)

// Config controls CF-tree construction and the global clustering phase.
type Config struct {
	// K is the number of final clusters.
	K int
	// Branching bounds entries per internal node; zero means 8.
	Branching int
	// LeafCapacity bounds entries per leaf; zero means 8.
	LeafCapacity int
	// Threshold is the initial leaf-entry radius bound T. Zero starts at
	// 0 (every distinct point its own entry) and lets rebuilds grow it.
	Threshold float64
	// MaxLeafEntries caps the total number of leaf entries; exceeding it
	// triggers a rebuild with a doubled threshold (BIRCH's memory bound).
	// Zero means 512.
	MaxLeafEntries int
}

func (c Config) branching() int {
	if c.Branching <= 1 {
		return 8
	}
	return c.Branching
}

func (c Config) leafCap() int {
	if c.LeafCapacity <= 1 {
		return 8
	}
	return c.LeafCapacity
}

func (c Config) maxLeaves() int {
	if c.MaxLeafEntries <= 0 {
		return 512
	}
	return c.MaxLeafEntries
}

// node is a CF-tree node; leaves hold entry CFs, internal nodes hold child
// pointers with summary CFs.
type node struct {
	leaf    bool
	cfs     []CF    // per entry (leaf) or per child summary (internal)
	child   []*node // internal only
	entryID []int   // leaf only: global leaf-entry ids
}

// Tree is a CF-tree under construction.
type Tree struct {
	cfg        Config
	root       *node
	threshold  float64
	numEntries int
	dim        int
}

// NewTree returns an empty CF-tree.
func NewTree(cfg Config) *Tree {
	return &Tree{
		cfg:       cfg,
		root:      &node{leaf: true},
		threshold: cfg.Threshold,
	}
}

// Threshold returns the current radius bound (it grows across rebuilds).
func (t *Tree) Threshold() float64 { return t.threshold }

// NumEntries returns the number of leaf entries (subclusters).
func (t *Tree) NumEntries() int { return t.numEntries }

// insertCF inserts a CF (a point, or a whole entry during rebuild) and
// returns the leaf-entry id it was absorbed into.
func (t *Tree) insertCF(cf CF) int {
	id, split := t.insert(t.root, cf)
	if split != nil {
		// Root split: grow the tree upward.
		oldSummary := summarize(t.root)
		newSummary := summarize(split)
		t.root = &node{
			leaf:  false,
			cfs:   []CF{oldSummary, newSummary},
			child: []*node{t.root, split},
		}
	}
	return id
}

func summarize(n *node) CF {
	var s CF
	for i := range n.cfs {
		s.Add(n.cfs[i])
	}
	return s
}

// insert descends to the closest leaf, absorbing or creating an entry, and
// returns a new sibling node when the visited node split.
func (t *Tree) insert(n *node, cf CF) (entryID int, split *node) {
	if n.leaf {
		// Find the closest entry.
		best, bestD := -1, math.Inf(1)
		for i := range n.cfs {
			if d := CentroidDist2(&n.cfs[i], &cf); d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			m := merged(&n.cfs[best], &cf)
			if m.Radius() <= t.threshold {
				n.cfs[best] = m
				return n.entryID[best], nil
			}
		}
		// New entry.
		id := t.numEntries
		t.numEntries++
		n.cfs = append(n.cfs, cf)
		n.entryID = append(n.entryID, id)
		if len(n.cfs) > t.cfg.leafCap() {
			return id, t.split(n)
		}
		return id, nil
	}

	// Internal: descend into the closest child.
	best, bestD := 0, math.Inf(1)
	for i := range n.cfs {
		if d := CentroidDist2(&n.cfs[i], &cf); d < bestD {
			best, bestD = i, d
		}
	}
	id, childSplit := t.insert(n.child[best], cf)
	n.cfs[best] = summarize(n.child[best])
	if childSplit != nil {
		n.cfs = append(n.cfs, summarize(childSplit))
		n.child = append(n.child, childSplit)
		if len(n.child) > t.cfg.branching() {
			return id, t.split(n)
		}
	}
	return id, nil
}

// split divides node n's entries between n and a new sibling, seeding with
// the farthest pair of entries (BIRCH's splitting rule).
func (t *Tree) split(n *node) *node {
	// Farthest pair.
	ai, bi := 0, 1
	worst := -1.0
	for i := range n.cfs {
		for j := i + 1; j < len(n.cfs); j++ {
			if d := CentroidDist2(&n.cfs[i], &n.cfs[j]); d > worst {
				ai, bi, worst = i, j, d
			}
		}
	}
	sib := &node{leaf: n.leaf}
	keepCFs := n.cfs[:0:0]
	var keepChild []*node
	var keepIDs []int
	for i := range n.cfs {
		da := CentroidDist2(&n.cfs[i], &n.cfs[ai])
		db := CentroidDist2(&n.cfs[i], &n.cfs[bi])
		toSib := db < da || i == bi
		if i == ai {
			toSib = false
		}
		if toSib {
			sib.cfs = append(sib.cfs, n.cfs[i])
			if n.leaf {
				sib.entryID = append(sib.entryID, n.entryID[i])
			} else {
				sib.child = append(sib.child, n.child[i])
			}
		} else {
			keepCFs = append(keepCFs, n.cfs[i])
			if n.leaf {
				keepIDs = append(keepIDs, n.entryID[i])
			} else {
				keepChild = append(keepChild, n.child[i])
			}
		}
	}
	n.cfs = keepCFs
	n.child = keepChild
	n.entryID = keepIDs
	return sib
}

// leafEntries collects the tree's leaf entries in id order.
func (t *Tree) leafEntries() []CF {
	out := make([]CF, t.numEntries)
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			for i := range n.cfs {
				out[n.entryID[i]] = n.cfs[i]
			}
			return
		}
		for _, c := range n.child {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Result is the outcome of a BIRCH run.
type Result struct {
	// Assign maps each input point to a final cluster.
	Assign []int
	// Clusters holds sorted member indices, largest first.
	Clusters [][]int
	// LeafEntries is the number of CF-tree leaf entries (subclusters)
	// before the global phase.
	LeafEntries int
	// Threshold is the final radius bound after rebuilds.
	Threshold float64
}

// Cluster runs the full BIRCH pipeline over the points: stream them into a
// CF-tree (rebuilding with a doubled threshold whenever the leaf-entry
// budget is exceeded), then cluster the leaf-entry centroids with the
// centroid-based hierarchical method and map points through their entries.
func Cluster(points [][]float64, cfg Config) (*Result, error) {
	if cfg.K <= 0 {
		return nil, errors.New("birch: K must be positive")
	}
	if len(points) == 0 {
		return &Result{}, nil
	}

	tree := NewTree(cfg)
	entryOf := make([]int, len(points))
	rebuildThreshold := func() float64 {
		if tree.threshold == 0 {
			return initialThreshold(points)
		}
		return tree.threshold * 2
	}
	for i, p := range points {
		entryOf[i] = tree.insertCF(NewCF(p))
		if tree.numEntries > cfg.maxLeaves() {
			// Rebuild: reinsert the existing leaf entries into a fresh
			// tree with a larger threshold, then remap the points seen
			// so far.
			old := tree.leafEntries()
			nt := NewTree(cfg)
			nt.threshold = rebuildThreshold()
			remap := make([]int, len(old))
			for e := range old {
				remap[e] = nt.insertCF(old[e])
			}
			for j := 0; j <= i; j++ {
				entryOf[j] = remap[entryOf[j]]
			}
			tree = nt
		}
	}

	entries := tree.leafEntries()
	// Global phase: centroid-hierarchical over entry centroids, weighted
	// by entry size via repeated... the standard simplification clusters
	// the centroids directly.
	centroids := make([][]float64, len(entries))
	for i := range entries {
		centroids[i] = entries[i].Centroid()
	}
	k := cfg.K
	if k > len(centroids) {
		k = len(centroids)
	}
	entryCluster, err := clusterCentroids(centroids, k)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Assign:      make([]int, len(points)),
		LeafEntries: len(entries),
		Threshold:   tree.threshold,
	}
	numClusters := 0
	for _, c := range entryCluster {
		if c+1 > numClusters {
			numClusters = c + 1
		}
	}
	members := make([][]int, numClusters)
	for i := range points {
		c := entryCluster[entryOf[i]]
		res.Assign[i] = c
		members[c] = append(members[c], i)
	}
	for _, m := range members {
		if len(m) > 0 {
			res.Clusters = append(res.Clusters, m)
		}
	}
	// Largest first.
	for i := 0; i < len(res.Clusters); i++ {
		for j := i + 1; j < len(res.Clusters); j++ {
			if len(res.Clusters[j]) > len(res.Clusters[i]) {
				res.Clusters[i], res.Clusters[j] = res.Clusters[j], res.Clusters[i]
			}
		}
	}
	return res, nil
}

// initialThreshold estimates a starting radius from a few point pairs.
func initialThreshold(points [][]float64) float64 {
	var s float64
	n := 0
	step := len(points)/16 + 1
	for i := 0; i+step < len(points); i += step {
		a, b := NewCF(points[i]), NewCF(points[i+step])
		s += math.Sqrt(CentroidDist2(&a, &b))
		n++
	}
	if n == 0 {
		return 1
	}
	return s / float64(n) / 8
}
