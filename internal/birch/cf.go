// Package birch implements BIRCH (Zhang, Ramakrishnan & Livny, SIGMOD
// 1996), the preclustering baseline Section 2 of the ROCK paper describes:
// "BIRCH first preclusters data and then uses a centroid-based hierarchical
// algorithm to cluster the partial clusters". Points stream into a CF-tree
// of clustering features; the leaf entries (subcluster summaries) are then
// globally clustered with the centroid method, and each point inherits its
// leaf entry's cluster. As the ROCK paper argues, the centroid foundation
// makes it a numeric-data algorithm; on boolean-encoded categoricals it
// serves as another traditional baseline.
package birch

import "math"

// CF is a clustering feature: the count, linear sum and squared sum of a
// set of points. CFs are additive, which is the whole trick.
type CF struct {
	N  int
	LS []float64
	SS float64
}

// NewCF returns the clustering feature of a single point.
func NewCF(p []float64) CF {
	ls := append([]float64(nil), p...)
	var ss float64
	for _, x := range p {
		ss += x * x
	}
	return CF{N: 1, LS: ls, SS: ss}
}

// Add merges other into cf.
func (cf *CF) Add(other CF) {
	if cf.N == 0 {
		cf.LS = append([]float64(nil), other.LS...)
		cf.N, cf.SS = other.N, other.SS
		return
	}
	cf.N += other.N
	for d := range cf.LS {
		cf.LS[d] += other.LS[d]
	}
	cf.SS += other.SS
}

// Centroid returns LS/N.
func (cf *CF) Centroid() []float64 {
	c := make([]float64, len(cf.LS))
	for d, v := range cf.LS {
		c[d] = v / float64(cf.N)
	}
	return c
}

// Radius is the RMS distance of the summarized points from their centroid:
// sqrt(SS/N - ||LS/N||²), clamped at zero against float cancellation.
func (cf *CF) Radius() float64 {
	n := float64(cf.N)
	var c2 float64
	for _, v := range cf.LS {
		c2 += (v / n) * (v / n)
	}
	r2 := cf.SS/n - c2
	if r2 < 0 {
		r2 = 0
	}
	return math.Sqrt(r2)
}

// CentroidDist2 is the squared Euclidean distance between two CF centroids.
func CentroidDist2(a, b *CF) float64 {
	na, nb := float64(a.N), float64(b.N)
	var s float64
	for d := range a.LS {
		diff := a.LS[d]/na - b.LS[d]/nb
		s += diff * diff
	}
	return s
}

// merged returns the CF of a ∪ b without mutating either.
func merged(a, b *CF) CF {
	m := CF{N: a.N, LS: append([]float64(nil), a.LS...), SS: a.SS}
	m.Add(*b)
	return m
}
