package birch

import "rock/internal/hier"

// clusterCentroids runs the global phase: centroid-based hierarchical
// clustering of the leaf-entry centroids (the ROCK paper: BIRCH "uses a
// centroid-based hierarchical algorithm to cluster the partial clusters").
// Returns the cluster index of each entry.
func clusterCentroids(centroids [][]float64, k int) ([]int, error) {
	res, err := hier.Agglomerate(len(centroids), hier.EuclideanSquared(centroids), hier.Config{
		Method: hier.Centroid,
		K:      k,
	})
	if err != nil {
		return nil, err
	}
	assign := make([]int, len(centroids))
	for c, members := range res.Clusters {
		for _, e := range members {
			assign[e] = c
		}
	}
	return assign, nil
}
