package partitional

import (
	"errors"
	"math/rand"

	"rock/internal/dataset"
)

// KModesConfig controls a k-modes run (Huang's categorical analogue of
// k-means: cluster centers are attribute-wise modes and the dissimilarity is
// the simple-matching count of differing attributes). Like the k-means
// criterion the paper's Section 1.1 analyses, k-modes is a partitional
// method that optimizes distances to centers; it serves as a second
// partitional baseline for categorical records.
type KModesConfig struct {
	// K is the number of clusters.
	K int
	// MaxIter bounds update iterations. Zero means 100.
	MaxIter int
	// Rng drives the initial mode selection; required.
	Rng *rand.Rand
}

// KModesResult is the outcome of a k-modes run.
type KModesResult struct {
	// Assign maps each record to its cluster.
	Assign []int
	// Modes are the final cluster centers.
	Modes []dataset.Record
	// Cost is the total simple-matching dissimilarity of records to their
	// modes.
	Cost int
	// Iters is the number of update iterations performed.
	Iters int
}

// matchDissim counts attributes where the record differs from the mode;
// missing values count as a mismatch against any concrete mode value.
func matchDissim(r, mode dataset.Record) int {
	d := 0
	for a := range r {
		if r[a] != mode[a] {
			d++
		}
	}
	return d
}

// KModes clusters categorical records.
func KModes(schema *dataset.Schema, records []dataset.Record, cfg KModesConfig) (*KModesResult, error) {
	if cfg.K <= 0 {
		return nil, errors.New("partitional: K must be positive")
	}
	if cfg.Rng == nil {
		return nil, errors.New("partitional: Rng is required")
	}
	n := len(records)
	if n == 0 {
		return &KModesResult{}, nil
	}
	k := cfg.K
	if k > n {
		k = n
	}
	maxIter := cfg.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	nattr := schema.NumAttrs()

	// Initialize modes with k distinct random records.
	perm := cfg.Rng.Perm(n)
	modes := make([]dataset.Record, k)
	for c := 0; c < k; c++ {
		modes[c] = append(dataset.Record(nil), records[perm[c]]...)
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}

	res := &KModesResult{}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, r := range records {
			best, bestD := 0, nattr+1
			for c := range modes {
				if d := matchDissim(r, modes[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		res.Iters = iter + 1
		if !changed {
			break
		}
		// Recompute modes: per cluster and attribute, the most frequent
		// non-missing value (ties toward the lower value index).
		counts := make([][]map[int]int, k)
		sizes := make([]int, k)
		for c := range counts {
			counts[c] = make([]map[int]int, nattr)
			for a := range counts[c] {
				counts[c][a] = make(map[int]int)
			}
		}
		for i, r := range records {
			c := assign[i]
			sizes[c]++
			for a, v := range r {
				if v != dataset.Missing {
					counts[c][a][v]++
				}
			}
		}
		for c := range modes {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at the record farthest from
				// its mode.
				far, farD := 0, -1
				for i, r := range records {
					if d := matchDissim(r, modes[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				modes[c] = append(dataset.Record(nil), records[far]...)
				continue
			}
			for a := 0; a < nattr; a++ {
				bestV, bestN := dataset.Missing, 0
				for v, cnt := range counts[c][a] {
					if cnt > bestN || (cnt == bestN && (bestV == dataset.Missing || v < bestV)) {
						bestV, bestN = v, cnt
					}
				}
				modes[c][a] = bestV
			}
		}
	}
	res.Assign = assign
	res.Modes = modes
	for i, r := range records {
		res.Cost += matchDissim(r, modes[assign[i]])
	}
	return res, nil
}
