package partitional

import (
	"math/rand"
	"testing"
)

func blobs(rng *rand.Rand, centers [][]float64, per int, noise float64) ([][]float64, []int) {
	var vecs [][]float64
	var labels []int
	for c, ctr := range centers {
		for i := 0; i < per; i++ {
			v := make([]float64, len(ctr))
			for d := range v {
				v[d] = ctr[d] + rng.NormFloat64()*noise
			}
			vecs = append(vecs, v)
			labels = append(labels, c)
		}
	}
	return vecs, labels
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	vecs, labels := blobs(rng, centers, 30, 0.5)
	res, err := KMeans(vecs, Config{K: 3, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	// All members of a true blob must share an assigned cluster.
	for c := 0; c < 3; c++ {
		first := -1
		for i, l := range labels {
			if l != c {
				continue
			}
			if first < 0 {
				first = res.Assign[i]
			} else if res.Assign[i] != first {
				t.Fatalf("blob %d split across clusters", c)
			}
		}
	}
}

func TestKMeansCriterionDecreasesWithBetterK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vecs, _ := blobs(rng, [][]float64{{0, 0}, {8, 8}}, 40, 0.3)
	r1, err := KMeans(vecs, Config{K: 1, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KMeans(vecs, Config{K: 2, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	if r2.E >= r1.E {
		t.Fatalf("E(k=2) = %v should be below E(k=1) = %v", r2.E, r1.E)
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(nil, Config{K: 0, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := KMeans(nil, Config{K: 2}); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestKMeansEmptyInput(t *testing.T) {
	res, err := KMeans(nil, Config{K: 2, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 0 {
		t.Fatal("non-empty result for empty input")
	}
}

func TestKMeansKExceedsN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vecs := [][]float64{{0}, {1}, {2}}
	res, err := KMeans(vecs, Config{K: 10, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assign {
		if a < 0 || a >= 3 {
			t.Fatalf("assignment %d out of range", a)
		}
	}
	if res.E > 1e-9 {
		t.Fatalf("E = %v, want ~0 when every point gets its own centroid", res.E)
	}
}

func TestKMeansDeterministicGivenSeed(t *testing.T) {
	vecsA, _ := blobs(rand.New(rand.NewSource(5)), [][]float64{{0, 0}, {5, 5}}, 20, 0.4)
	r1, _ := KMeans(vecsA, Config{K: 2, Rng: rand.New(rand.NewSource(6))})
	r2, _ := KMeans(vecsA, Config{K: 2, Rng: rand.New(rand.NewSource(6))})
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestClustersPartition(t *testing.T) {
	assign := []int{0, 1, 0, 2, 1}
	cl := Clusters(assign, 3)
	if len(cl[0]) != 2 || len(cl[1]) != 2 || len(cl[2]) != 1 {
		t.Fatalf("clusters = %v", cl)
	}
}

// TestKMeansSplitsLargeCategoricalCluster demonstrates the paper's Section
// 1.1 argument: minimizing E on boolean data favors splitting a large,
// spread-out cluster while a compact small cluster survives — k-means
// carves the big cluster even though it is one natural group.
func TestKMeansSplitsLargeCategoricalCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Big cluster: 200 transactions over 40 items, each picking 10 random
	// items (spread out). Small cluster: 30 transactions over 4 items.
	dim := 44
	var vecs [][]float64
	var labels []int
	for i := 0; i < 200; i++ {
		v := make([]float64, dim)
		for k := 0; k < 10; k++ {
			v[rng.Intn(40)] = 1
		}
		vecs = append(vecs, v)
		labels = append(labels, 0)
	}
	for i := 0; i < 30; i++ {
		v := make([]float64, dim)
		for k := 40; k < 44; k++ {
			if rng.Float64() < 0.8 {
				v[k] = 1
			}
		}
		vecs = append(vecs, v)
		labels = append(labels, 1)
	}
	res, err := KMeans(vecs, Config{K: 3, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	// The big cluster must be split across at least two k-means clusters.
	seen := make(map[int]bool)
	for i, l := range labels {
		if l == 0 {
			seen[res.Assign[i]] = true
		}
	}
	if len(seen) < 2 {
		t.Error("k-means unexpectedly kept the large spread-out cluster whole")
	}
}
