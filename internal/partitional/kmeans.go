// Package partitional implements the partitional baseline the paper's
// introduction analyses (Section 1.1): iterative minimization of the
// criterion E = Σ_i Σ_{x ∈ Ci} d(x, m_i)² over boolean-encoded categorical
// data — Lloyd's k-means with k-means++ seeding. It exists to demonstrate,
// on the paper's workloads, the large-cluster-splitting behaviour the
// criterion induces on categorical data.
package partitional

import (
	"errors"
	"math"
	"math/rand"
)

// Config controls a k-means run.
type Config struct {
	// K is the number of clusters.
	K int
	// MaxIter bounds Lloyd iterations. Zero means 100.
	MaxIter int
	// Rng drives k-means++ seeding; required.
	Rng *rand.Rand
}

// Result is the outcome of a k-means run.
type Result struct {
	// Assign maps each point to its cluster in [0, K).
	Assign []int
	// Centroids are the final cluster means.
	Centroids [][]float64
	// E is the final value of the criterion function (sum of squared
	// distances of points to their cluster means).
	E float64
	// Iters is the number of Lloyd iterations performed.
	Iters int
}

// KMeans clusters the given dense vectors.
func KMeans(vecs [][]float64, cfg Config) (*Result, error) {
	n := len(vecs)
	if cfg.K <= 0 {
		return nil, errors.New("partitional: K must be positive")
	}
	if cfg.Rng == nil {
		return nil, errors.New("partitional: Rng is required")
	}
	if n == 0 {
		return &Result{}, nil
	}
	k := cfg.K
	if k > n {
		k = n
	}
	maxIter := cfg.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	dim := len(vecs[0])

	cents := seedPlusPlus(vecs, k, cfg.Rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, math.Inf(1)
			for c := range cents {
				if d := sqDist(v, cents[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		res.Iters = iter + 1
		if !changed {
			break
		}
		// Recompute means.
		counts := make([]int, k)
		for c := range cents {
			for d := 0; d < dim; d++ {
				cents[c][d] = 0
			}
		}
		for i, v := range vecs {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				cents[c][d] += v[d]
			}
		}
		for c := range cents {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from
				// its centroid.
				cents[c] = append([]float64(nil), vecs[farthest(vecs, cents, assign)]...)
				continue
			}
			for d := 0; d < dim; d++ {
				cents[c][d] /= float64(counts[c])
			}
		}
	}
	res.Assign = assign
	res.Centroids = cents
	for i, v := range vecs {
		res.E += sqDist(v, cents[assign[i]])
	}
	return res, nil
}

// seedPlusPlus picks k initial centroids with D² weighting (k-means++).
func seedPlusPlus(vecs [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(vecs)
	cents := make([][]float64, 0, k)
	first := rng.Intn(n)
	cents = append(cents, append([]float64(nil), vecs[first]...))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = sqDist(vecs[i], cents[0])
	}
	for len(cents) < k {
		var sum float64
		for _, d := range d2 {
			sum += d
		}
		var pick int
		if sum == 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * sum
			for i, d := range d2 {
				r -= d
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		c := append([]float64(nil), vecs[pick]...)
		cents = append(cents, c)
		for i := range d2 {
			if d := sqDist(vecs[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return cents
}

func farthest(vecs [][]float64, cents [][]float64, assign []int) int {
	best, bestD := 0, -1.0
	for i, v := range vecs {
		if d := sqDist(v, cents[assign[i]]); d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Clusters converts an assignment vector into member lists.
func Clusters(assign []int, k int) [][]int {
	out := make([][]int, k)
	for i, c := range assign {
		out[c] = append(out[c], i)
	}
	return out
}
