package partitional

import (
	"math/rand"
	"testing"

	"rock/internal/datagen"
	"rock/internal/dataset"
	"rock/internal/eval"
)

func kmodesSchema() *dataset.Schema {
	return dataset.NewSchema(
		dataset.Attribute{Name: "a", Domain: []string{"x", "y", "z"}},
		dataset.Attribute{Name: "b", Domain: []string{"x", "y", "z"}},
		dataset.Attribute{Name: "c", Domain: []string{"x", "y", "z"}},
		dataset.Attribute{Name: "d", Domain: []string{"x", "y", "z"}},
	)
}

func TestKModesSeparatesPlantedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	schema := kmodesSchema()
	var records []dataset.Record
	var labels []int
	plant := func(proto dataset.Record, label, n int) {
		for i := 0; i < n; i++ {
			r := append(dataset.Record(nil), proto...)
			// One random attribute flipped per record.
			a := rng.Intn(len(r))
			r[a] = rng.Intn(3)
			records = append(records, r)
			labels = append(labels, label)
		}
	}
	plant(dataset.Record{0, 0, 0, 0}, 0, 40)
	plant(dataset.Record{2, 2, 2, 2}, 1, 40)
	res, err := KModes(schema, records, KModesConfig{K: 2, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	clusters := Clusters(res.Assign, 2)
	if got := eval.Misclassified(clusters, labels, 2, len(records)); got > 4 {
		t.Errorf("misclassified = %d of %d", got, len(records))
	}
}

func TestKModesModesAreModes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	schema := kmodesSchema()
	records := []dataset.Record{
		{0, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0},
	}
	res, err := KModes(schema, records, KModesConfig{K: 1, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	want := dataset.Record{0, 0, 0, 0}
	for a := range want {
		if res.Modes[0][a] != want[a] {
			t.Fatalf("mode = %v, want %v", res.Modes[0], want)
		}
	}
	if res.Cost != 2 {
		t.Fatalf("cost = %d, want 2", res.Cost)
	}
}

func TestKModesValidation(t *testing.T) {
	if _, err := KModes(kmodesSchema(), nil, KModesConfig{K: 0, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := KModes(kmodesSchema(), nil, KModesConfig{K: 2}); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestKModesEmpty(t *testing.T) {
	res, err := KModes(kmodesSchema(), nil, KModesConfig{K: 2, Rng: rand.New(rand.NewSource(1))})
	if err != nil || len(res.Assign) != 0 {
		t.Fatalf("empty input: %v %v", res, err)
	}
}

func TestKModesDeterministic(t *testing.T) {
	rng1 := rand.New(rand.NewSource(7))
	rng2 := rand.New(rand.NewSource(7))
	d := datagen.Votes(datagen.DefaultVotesConfig(), rand.New(rand.NewSource(1)))
	r1, err := KModes(d.Schema, d.Records, KModesConfig{K: 2, Rng: rng1})
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := KModes(d.Schema, d.Records, KModesConfig{K: 2, Rng: rng2})
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatal("not deterministic")
		}
	}
}

// TestKModesOnVotes sanity-checks the baseline on the votes workload: it
// should broadly separate the parties (both classes dominated by different
// clusters) even if less cleanly than ROCK.
func TestKModesOnVotes(t *testing.T) {
	d := datagen.Votes(datagen.DefaultVotesConfig(), rand.New(rand.NewSource(1)))
	res, err := KModes(d.Schema, d.Records, KModesConfig{K: 2, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	clusters := Clusters(res.Assign, 2)
	purity := eval.Purity(clusters, d.Labels, 2)
	if purity < 0.8 {
		t.Errorf("k-modes purity = %.3f on votes, want >= 0.8", purity)
	}
}
