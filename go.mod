module rock

go 1.22
