package rock

import (
	"sort"

	"rock/internal/links"
	"rock/internal/rockcore"
	"rock/internal/sim"
	"rock/internal/simjoin"
)

// MergeStep is one recorded agglomeration step (see Config.TraceMerges).
type MergeStep = rockcore.MergeStep

// ClusterStat describes one final cluster (size, internal links, E_l term).
type ClusterStat = rockcore.ClusterStat

// BestK suggests a natural cluster count from a merge trace by locating the
// peak of the criterion function E_l along the merge sequence (the paper:
// "the best clusters are the ones that maximize the value of the criterion
// function"). Run the clusterer with Config{K: 1, TraceMerges: true} and
// pass Result.Trace and Result.F.
func BestK(trace []MergeStep, f float64) int { return rockcore.BestK(trace, f) }

// CriterionTrajectory reconstructs E_l after every merge of a trace; its
// peak is an alternative data-driven stopping point (the paper's best
// clusterings maximize E_l).
func CriterionTrajectory(trace []MergeStep, f float64) []float64 {
	return rockcore.CriterionTrajectory(trace, f)
}

// Components clusters transactions as the connected components of the
// theta-neighbor graph — the QROCK simplification (Dutta, Mahanta & Pujari
// 2005): for well-separated categorical data ROCK's clusters coincide with
// the components, and this variant needs neither K nor the goodness
// machinery. Components are returned largest first; singletons last.
func Components(txns []Transaction, theta float64, similarity TxnSimilarity) [][]int {
	if similarity == nil {
		similarity = sim.Jaccard
	}
	// Same engine selection as ClusterTransactions: indexed join for the
	// named set measures, brute force otherwise.
	nb := simjoin.NewSource(txns, similarity).ComputeNeighbors(links.Config{Theta: theta})
	comps := rockcore.ConnectedComponents(nb.Lists)
	sortClustersBySize(comps)
	return comps
}

// ComponentsSim is Components under an arbitrary index-addressed similarity.
func ComponentsSim(n int, similarity func(i, j int) float64, theta float64) [][]int {
	nb := links.ComputeNeighbors(n, similarity, links.Config{Theta: theta})
	comps := rockcore.ConnectedComponents(nb.Lists)
	sortClustersBySize(comps)
	return comps
}

func sortClustersBySize(cs [][]int) {
	for _, c := range cs {
		sort.Ints(c)
	}
	sort.Slice(cs, func(i, j int) bool {
		if len(cs[i]) != len(cs[j]) {
			return len(cs[i]) > len(cs[j])
		}
		return cs[i][0] < cs[j][0]
	})
}
