package rock_test

import (
	"math/rand"
	"testing"

	"rock"
	"rock/internal/datagen"
)

func TestPublicTraceAndBestK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := datagen.Basket(datagen.ScaledBasketConfig(300), rng)
	res, err := rock.ClusterTransactions(data.Txns, rock.Config{
		K: 1, Theta: 0.5, MinNeighbors: 1, TraceMerges: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	k := rock.BestK(res.Trace, res.F)
	if k < data.NumClusters()-2 || k > data.NumClusters()+4 {
		t.Errorf("BestK = %d, want near %d", k, data.NumClusters())
	}
	traj := rock.CriterionTrajectory(res.Trace, res.F)
	if len(traj) != len(res.Trace) {
		t.Fatalf("trajectory length %d", len(traj))
	}
	if len(res.ClusterStats) != len(res.Clusters) {
		t.Fatalf("cluster stats %d for %d clusters", len(res.ClusterStats), len(res.Clusters))
	}
	for i, st := range res.ClusterStats {
		if st.Size != len(res.Clusters[i]) {
			t.Fatalf("stat size %d != cluster size %d", st.Size, len(res.Clusters[i]))
		}
	}
}

func TestComponentsQROCK(t *testing.T) {
	txns := []rock.Transaction{
		rock.NewTransaction(1, 2, 3),
		rock.NewTransaction(1, 2, 4),
		rock.NewTransaction(1, 3, 4),
		rock.NewTransaction(8, 9, 10),
		rock.NewTransaction(8, 9, 11),
		rock.NewTransaction(20, 21),
	}
	comps := rock.Components(txns, 0.4, nil)
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("sizes = %d %d %d", len(comps[0]), len(comps[1]), len(comps[2]))
	}
	if comps[2][0] != 5 {
		t.Fatalf("singleton should be the isolated transaction, got %v", comps[2])
	}
}

func TestComponentsSim(t *testing.T) {
	simf := func(i, j int) float64 {
		if (i < 4) == (j < 4) {
			return 1
		}
		return 0
	}
	comps := rock.ComponentsSim(7, simf, 0.5)
	if len(comps) != 2 || len(comps[0]) != 4 || len(comps[1]) != 3 {
		t.Fatalf("components = %v", comps)
	}
}
