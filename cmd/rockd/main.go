// Command rockd serves a trained ROCK assignment model over HTTP: the
// labeling rule of Section 4.6 of the paper as a long-running daemon. Train
// anywhere, snapshot the Labeler (rock -snapshot, or Labeler.SaveSnapshot),
// then serve:
//
//	rockd -model model.rockm -addr :7745
//	rockd -dir /var/lib/rockd/models -addr :7745
//
// With -dir the daemon serves from a versioned snapshot directory
// (model-<seq>.rock): it picks the newest generation that loads and
// validates, automatically rolling back past corrupt ones, and may start
// with no model at all (not ready until the first successful reload).
//
// With -registry the daemon serves MANY named models from one root — one
// model.Dir subdirectory per model name:
//
//	rockd -registry /var/lib/rockd/models -max-models 8 -cache 4096
//
// Models load lazily on first hit and the least-recently-used ones are
// evicted once -max-models/-max-model-bytes is exceeded; each model has its
// own answer cache, reload cycle and metric labels. The legacy single-model
// routes alias to -default-model.
//
// API (see internal/daemon for the handler layer):
//
//	POST /v1/assign   {"transactions": [[1,2,3],...]}  →  {"assignments":[{"cluster":0,"score":1.7},...]}
//	                  {"records": [["red","round"],...]} for models with a schema;
//	                  responses carry X-Rock-Model-Seq naming the serving generation
//	POST /v1/assign/{model}   same, against a named registry model
//	POST /v1/reload   {"path": "new.rockm"} — hot-swap with zero downtime;
//	                  {} with -dir reloads the latest good generation
//	POST /v1/reload/{model}   reload one registry model's newest generation
//	GET  /healthz     liveness probe (process up)
//	GET  /readyz      readiness probe (model loaded, not draining) + serving seq
//	                  (+ per-model serving seqs in registry mode)
//	GET  /metrics     Prometheus text exposition; ?format=json for the JSON shape
//	GET  /v1/model    summary of the currently served model
//	GET  /v1/models   every registered model's serving state and counters
//
// Overload is shed with 429 + Retry-After once -max-inflight assign
// requests are in flight; each request runs under a -req-timeout deadline;
// handler panics become 500s without killing the process. SIGINT/SIGTERM
// fail /readyz, drain in-flight requests, then exit. A fleet of rockd
// replicas is fronted by rockgate (cmd/rockgate).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rock/internal/daemon"
	"rock/internal/model"
	"rock/internal/registry"
	"rock/internal/serve"
	"rock/internal/store"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	logger := log.New(os.Stderr, "rockd: ", log.LstdFlags|log.Lmicroseconds)
	var (
		addr        = flag.String("addr", ":7745", "listen address")
		modelPath   = flag.String("model", "", "snapshot file to serve")
		dirPath     = flag.String("dir", "", "versioned snapshot directory to serve from (model-<seq>.rock)")
		retention   = flag.Int("retention", model.DefaultRetention, "snapshot generations to keep in -dir")
		workers     = flag.Int("workers", 0, "assignment worker pool size (0 = GOMAXPROCS)")
		maxInflight = flag.Int("max-inflight", 256, "assign requests admitted concurrently before shedding with 429")
		reqTimeout  = flag.Duration("req-timeout", 30*time.Second, "per-request deadline")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		injectLat   = flag.Duration("inject-latency", 0, "fault injection: extra service time per assign request (testing/benchmarking routing tiers)")
		injectTail  = flag.Duration("inject-tail", 0, "fault injection: extra straggler latency applied every -inject-tail-every requests")
		injectEvery = flag.Int("inject-tail-every", 0, "fault injection: apply -inject-tail to every Nth assign request (0 = off)")
		cacheCap    = flag.Int("cache", 0, "answer-cache capacity in entries (0 = disabled); invalidated wholesale on every reload")

		registryRoot  = flag.String("registry", "", "multi-tenant registry root (one model subdirectory per name); serves /v1/assign/{model}")
		defaultModel  = flag.String("default-model", "default", "model name the legacy single-model routes alias to in registry mode")
		maxModels     = flag.Int("max-models", 0, "registry: compiled models kept resident before LRU eviction (0 = unlimited)")
		maxModelBytes = flag.Int64("max-model-bytes", 0, "registry: estimated resident model bytes before LRU eviction (0 = unlimited)")
	)
	flag.Parse()
	modes := 0
	for _, set := range []bool{*modelPath != "", *dirPath != "", *registryRoot != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		logger.Fatal("usage: rockd (-model <snapshot> | -dir <snapshot-dir> | -registry <root>) [-addr :7745]")
	}

	cfg := daemon.Config{
		MaxInflight:     *maxInflight,
		ReqTimeout:      *reqTimeout,
		InjectLatency:   *injectLat,
		InjectTail:      *injectTail,
		InjectTailEvery: *injectEvery,
	}
	var engine *serve.Engine
	switch {
	case *registryRoot != "":
		reg, err := registry.Open(registry.Config{
			Root:          *registryRoot,
			Keep:          *retention,
			MaxModels:     *maxModels,
			MaxModelBytes: *maxModelBytes,
			CacheCap:      *cacheCap,
		})
		if err != nil {
			logger.Fatalf("opening registry: %v", err)
		}
		cfg.Registry = reg
		cfg.DefaultModel = *defaultModel
		engine = serve.NewIdle(*workers)
		logger.Printf("registry mode: root %s, %d registered models %v, default %q, budget max-models=%d max-model-bytes=%d",
			*registryRoot, len(reg.Names()), reg.Names(), *defaultModel, *maxModels, *maxModelBytes)
	case *modelPath != "":
		snap, err := model.Load(*modelPath)
		if err != nil {
			logger.Fatalf("loading model: %v", err)
		}
		assigner, err := model.Compile(snap)
		if err != nil {
			logger.Fatalf("compiling model: %v", err)
		}
		if engine, err = serve.New(assigner, *workers); err != nil {
			logger.Fatalf("starting engine: %v", err)
		}
		logger.Printf("serving %s: %d clusters, %d labeled sets, %d labeled transactions, theta=%.3f sim=%s",
			*modelPath, assigner.Clusters(), len(snap.Sets), len(snap.Txns), assigner.Theta(), assigner.SimName())
	default:
		if err := os.MkdirAll(*dirPath, 0o755); err != nil {
			logger.Fatalf("creating snapshot directory: %v", err)
		}
		dir, err := model.OpenDir(store.OS, *dirPath, "model", *retention)
		if err != nil {
			logger.Fatalf("opening snapshot directory: %v", err)
		}
		cfg.Dir = dir
		snap, entry, skipped, err := dir.LoadLatest()
		for _, e := range skipped {
			logger.Printf("rollback: snapshot %s (seq %d) failed to load, falling back", e.Path, e.Seq)
		}
		switch {
		case errors.Is(err, model.ErrNoSnapshots):
			engine = serve.NewIdle(*workers)
			logger.Printf("no loadable snapshot in %s yet; starting idle (not ready until first reload)", *dirPath)
		case err != nil:
			logger.Fatalf("scanning snapshot directory: %v", err)
		default:
			assigner, err := model.Compile(snap)
			if err != nil {
				logger.Fatalf("compiling snapshot %s: %v", entry.Path, err)
			}
			if engine, err = serve.New(assigner, *workers); err != nil {
				logger.Fatalf("starting engine: %v", err)
			}
			cfg.InitialSeq = entry.Seq
			logger.Printf("serving %s (seq %d): %d clusters, %d labeled transactions, theta=%.3f sim=%s",
				entry.Path, entry.Seq, assigner.Clusters(), len(snap.Txns), assigner.Theta(), assigner.SimName())
		}
	}

	if *cacheCap > 0 {
		if cfg.Registry != nil {
			// Registry mode builds one cache per loaded model; the engine's
			// own single-model cache slot stays unused.
			logger.Printf("answer caches enabled: %d entries per model", *cacheCap)
		} else {
			engine.EnableCache(*cacheCap)
			logger.Printf("answer cache enabled: %d entries", *cacheCap)
		}
	}
	handler := daemon.New(engine, logger, cfg)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatalf("server: %v", err)
	case <-ctx.Done():
	}

	// Drain: fail readiness so load balancers stop routing here, stop
	// accepting, let in-flight requests finish, then release the worker
	// pool.
	logger.Printf("signal received, draining for up to %s", *drain)
	handler.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	engine.Close()
	m := engine.Metrics()
	logger.Printf("served %d requests (%d assignments, %d outliers, %d reloads); bye",
		m.Requests, m.Assignments, m.Outliers, m.Reloads)
}
