// Command rockd serves a trained ROCK assignment model over HTTP: the
// labeling rule of Section 4.6 of the paper as a long-running daemon. Train
// anywhere, snapshot the Labeler (rock -snapshot, or Labeler.SaveSnapshot),
// then serve:
//
//	rockd -model model.rockm -addr :7745
//
// API:
//
//	POST /v1/assign   {"transactions": [[1,2,3],...]}  →  {"assignments":[{"cluster":0,"score":1.7},...]}
//	                  {"records": [["red","round"],...]} for models with a schema
//	POST /v1/reload   {"path": "new.rockm"}  — hot-swap the model with zero downtime
//	GET  /healthz     liveness probe
//	GET  /metrics     request/assignment/outlier counters and latency quantiles
//	GET  /v1/model    summary of the currently served model
//
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rock/internal/model"
	"rock/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	logger := log.New(os.Stderr, "rockd: ", log.LstdFlags|log.Lmicroseconds)
	var (
		addr      = flag.String("addr", ":7745", "listen address")
		modelPath = flag.String("model", "", "snapshot file to serve (required)")
		workers   = flag.Int("workers", 0, "assignment worker pool size (0 = GOMAXPROCS)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()
	if *modelPath == "" {
		logger.Fatal("usage: rockd -model <snapshot> [-addr :7745]")
	}

	snap, err := model.Load(*modelPath)
	if err != nil {
		logger.Fatalf("loading model: %v", err)
	}
	assigner, err := model.Compile(snap)
	if err != nil {
		logger.Fatalf("compiling model: %v", err)
	}
	engine, err := serve.New(assigner, *workers)
	if err != nil {
		logger.Fatalf("starting engine: %v", err)
	}
	logger.Printf("serving %s: %d clusters, %d labeled sets, %d labeled transactions, theta=%.3f sim=%s",
		*modelPath, assigner.Clusters(), len(snap.Sets), len(snap.Txns), assigner.Theta(), assigner.SimName())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(engine, logger),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatalf("server: %v", err)
	case <-ctx.Done():
	}

	// Drain: stop accepting, let in-flight requests finish, then release
	// the worker pool.
	logger.Printf("signal received, draining for up to %s", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	engine.Close()
	m := engine.Metrics()
	logger.Printf("served %d requests (%d assignments, %d outliers, %d reloads); bye",
		m.Requests, m.Assignments, m.Outliers, m.Reloads)
}
