package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"rock/internal/dataset"
	"rock/internal/model"
	"rock/internal/serve"
)

// assignRequest is the body of POST /v1/assign. Exactly one of Transactions
// and Records must be set; Records requires the model to carry a schema.
type assignRequest struct {
	// Transactions are item-id sets, e.g. [[1,2,3],[4,5]].
	Transactions [][]int64 `json:"transactions,omitempty"`
	// Records are categorical records as value strings ("?" = missing),
	// e.g. [["red","round"],["green","?"]].
	Records [][]string `json:"records,omitempty"`
}

// assignResponse is the body of a successful POST /v1/assign.
type assignResponse struct {
	Assignments []serve.Assignment `json:"assignments"`
}

// reloadRequest is the body of POST /v1/reload. An empty path asks the
// daemon to reload the newest good snapshot from its -dir.
type reloadRequest struct {
	Path string `json:"path"`
}

type modelInfo struct {
	Clusters     int     `json:"clusters"`
	Sets         int     `json:"sets"`
	Transactions int     `json:"transactions"`
	Theta        float64 `json:"theta"`
	Similarity   string  `json:"similarity"`
	HasSchema    bool    `json:"has_schema"`
}

func infoOf(a *model.Assigner) modelInfo {
	return modelInfo{
		Clusters:     a.Clusters(),
		Sets:         len(a.Snapshot().Sets),
		Transactions: len(a.Snapshot().Txns),
		Theta:        a.Theta(),
		Similarity:   a.SimName(),
		HasSchema:    a.Schema() != nil,
	}
}

// daemonMetrics is the /metrics payload: the engine's counters plus the
// daemon-level resilience counters.
type daemonMetrics struct {
	serve.Metrics
	// Shed counts assign requests rejected with 429 because the admission
	// semaphore was full.
	Shed uint64 `json:"shed"`
	// Panics counts handler panics converted to 500s by the recovery
	// middleware.
	Panics uint64 `json:"panics"`
}

// maxBodyBytes bounds request bodies; a labeling request has no business
// being larger.
const maxBodyBytes = 32 << 20

// serverConfig tunes the daemon's resilience knobs.
type serverConfig struct {
	// maxInflight bounds concurrently admitted /v1/assign requests; the
	// excess is shed with 429 + Retry-After instead of queuing without
	// bound. <= 0 selects 256.
	maxInflight int
	// reqTimeout is the per-request deadline. <= 0 selects 30s.
	reqTimeout time.Duration
	// dir, when non-nil, is the versioned snapshot directory the daemon
	// serves from; /v1/reload with an empty path picks its latest good
	// generation (rolling back past corrupt ones).
	dir *model.Dir
}

func (c serverConfig) withDefaults() serverConfig {
	if c.maxInflight <= 0 {
		c.maxInflight = 256
	}
	if c.reqTimeout <= 0 {
		c.reqTimeout = 30 * time.Second
	}
	return c
}

// server routes rockd's HTTP API onto a serve.Engine. It is an
// http.Handler, so tests drive it through httptest without a socket.
type server struct {
	engine *serve.Engine
	logger *log.Logger
	mux    *http.ServeMux
	cfg    serverConfig
	// sem is the admission semaphore for /v1/assign: a slot per admitted
	// request, no queue. Full slot table → shed with 429.
	sem chan struct{}
	// draining is set when graceful shutdown begins; /readyz then fails so
	// load balancers stop routing here while in-flight requests finish.
	draining atomic.Bool
	shed     atomic.Uint64
	panics   atomic.Uint64
	// reloadMu serializes snapshot loads (not swaps — swaps are lock-free
	// and assignment traffic never takes this lock).
	reloadMu sync.Mutex
}

func newServer(engine *serve.Engine, logger *log.Logger, cfg serverConfig) *server {
	cfg = cfg.withDefaults()
	s := &server{
		engine: engine,
		logger: logger,
		mux:    http.NewServeMux(),
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.maxInflight),
	}
	s.mux.HandleFunc("POST /v1/assign", s.handleAssign)
	s.mux.HandleFunc("POST /v1/reload", s.handleReload)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/model", s.handleModel)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Panic isolation: one broken request must cost a 500, not the
	// process. Recover installs before anything else so even middleware
	// bugs are contained.
	defer func() {
		if v := recover(); v != nil {
			s.panics.Add(1)
			s.logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
			s.writeError(w, http.StatusInternalServerError, "internal error")
		}
	}()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.reqTimeout)
	defer cancel()
	r = r.WithContext(ctx)
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// beginDrain flips readiness off ahead of graceful shutdown, so probes pull
// the instance out of rotation while in-flight requests complete.
func (s *server) beginDrain() { s.draining.Store(true) }

func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logger.Printf("writing response: %v", err)
	}
}

func (s *server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleAssign(w http.ResponseWriter, r *http.Request) {
	// Bounded admission: take a slot or shed. A full slot table means the
	// worker pool is saturated; queuing more would only grow memory and
	// latency without growing throughput.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, "server at capacity (%d in flight); retry later", s.cfg.maxInflight)
		return
	}
	// Capture the model once: encoding (for records) and assignment below
	// both use this assigner, so a concurrent reload can never split the
	// request across two models.
	a := s.engine.Model()
	if a == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no model loaded yet; POST /v1/reload first")
		return
	}
	var req assignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if (req.Transactions == nil) == (req.Records == nil) {
		s.writeError(w, http.StatusBadRequest, "send exactly one of transactions or records")
		return
	}
	var txns []dataset.Transaction
	if req.Transactions != nil {
		txns = make([]dataset.Transaction, len(req.Transactions))
		for i, items := range req.Transactions {
			t := make(dataset.Transaction, 0, len(items))
			for _, it := range items {
				if it < 0 || it > 1<<31-1 {
					s.writeError(w, http.StatusBadRequest, "transaction %d: item %d out of range", i, it)
					return
				}
				t = append(t, dataset.Item(it))
			}
			t.Normalize()
			txns[i] = t
		}
	} else {
		txns = make([]dataset.Transaction, len(req.Records))
		for i, rec := range req.Records {
			t, err := a.EncodeRecord(rec)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, "record %d: %v", i, err)
				return
			}
			txns[i] = t
		}
	}
	out, err := s.engine.AssignAllContext(r.Context(), a, txns)
	if err != nil {
		// The client went away or the per-request deadline fired; either
		// way the batch was not fully served.
		status := http.StatusServiceUnavailable
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		s.writeError(w, status, "request abandoned: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, assignResponse{Assignments: out})
}

func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()

	var (
		snap    *model.Snapshot
		source  string
		skipped []model.Entry
	)
	switch {
	case req.Path != "":
		var err error
		if snap, err = model.Load(req.Path); err != nil {
			s.writeError(w, http.StatusUnprocessableEntity, "loading snapshot: %v", err)
			return
		}
		source = req.Path
	case s.cfg.dir != nil:
		var (
			entry model.Entry
			err   error
		)
		snap, entry, skipped, err = s.cfg.dir.LoadLatest()
		if err != nil {
			s.writeError(w, http.StatusUnprocessableEntity, "loading latest snapshot: %v", err)
			return
		}
		source = entry.Path
		for _, e := range skipped {
			s.logger.Printf("rollback: snapshot %s (seq %d) failed to load, falling back", e.Path, e.Seq)
		}
	default:
		s.writeError(w, http.StatusBadRequest, "missing snapshot path (no -dir configured)")
		return
	}

	a, err := model.Compile(snap)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "compiling snapshot: %v", err)
		return
	}
	if _, err := s.engine.Swap(a); err != nil {
		s.writeError(w, http.StatusInternalServerError, "installing model: %v", err)
		return
	}
	s.logger.Printf("reloaded model from %s (%d clusters, %d labeled transactions)",
		source, a.Clusters(), len(snap.Txns))
	resp := map[string]any{"ok": true, "model": infoOf(a), "source": source}
	if len(skipped) > 0 {
		rolled := make([]string, len(skipped))
		for i, e := range skipped {
			rolled[i] = e.Path
		}
		resp["rolled_back_past"] = rolled
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is liveness only: the process is up and serving HTTP. It
// deliberately stays green through drains and model-less starts — restarts
// don't fix either.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleReadyz is readiness: route traffic here only when a model is loaded
// and the daemon is not draining.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := s.engine.Ready() && !s.draining.Load()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, map[string]any{
		"ready":        ready,
		"model_loaded": s.engine.Ready(),
		"draining":     s.draining.Load(),
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, daemonMetrics{
		Metrics: s.engine.Metrics(),
		Shed:    s.shed.Load(),
		Panics:  s.panics.Load(),
	})
}

func (s *server) handleModel(w http.ResponseWriter, r *http.Request) {
	a := s.engine.Model()
	if a == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	s.writeJSON(w, http.StatusOK, infoOf(a))
}
