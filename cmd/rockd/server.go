package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"

	"rock/internal/dataset"
	"rock/internal/model"
	"rock/internal/serve"
)

// assignRequest is the body of POST /v1/assign. Exactly one of Transactions
// and Records must be set; Records requires the model to carry a schema.
type assignRequest struct {
	// Transactions are item-id sets, e.g. [[1,2,3],[4,5]].
	Transactions [][]int64 `json:"transactions,omitempty"`
	// Records are categorical records as value strings ("?" = missing),
	// e.g. [["red","round"],["green","?"]].
	Records [][]string `json:"records,omitempty"`
}

// assignResponse is the body of a successful POST /v1/assign.
type assignResponse struct {
	Assignments []serve.Assignment `json:"assignments"`
}

// reloadRequest is the body of POST /v1/reload.
type reloadRequest struct {
	Path string `json:"path"`
}

type modelInfo struct {
	Clusters     int     `json:"clusters"`
	Sets         int     `json:"sets"`
	Transactions int     `json:"transactions"`
	Theta        float64 `json:"theta"`
	Similarity   string  `json:"similarity"`
	HasSchema    bool    `json:"has_schema"`
}

func infoOf(a *model.Assigner) modelInfo {
	return modelInfo{
		Clusters:     a.Clusters(),
		Sets:         len(a.Snapshot().Sets),
		Transactions: len(a.Snapshot().Txns),
		Theta:        a.Theta(),
		Similarity:   a.SimName(),
		HasSchema:    a.Schema() != nil,
	}
}

// maxBodyBytes bounds request bodies; a labeling request has no business
// being larger.
const maxBodyBytes = 32 << 20

// server routes rockd's HTTP API onto a serve.Engine. It is an
// http.Handler, so tests drive it through httptest without a socket.
type server struct {
	engine *serve.Engine
	logger *log.Logger
	mux    *http.ServeMux
	// reloadMu serializes snapshot loads (not swaps — swaps are lock-free
	// and assignment traffic never takes this lock).
	reloadMu sync.Mutex
}

func newServer(engine *serve.Engine, logger *log.Logger) *server {
	s := &server{engine: engine, logger: logger, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/assign", s.handleAssign)
	s.mux.HandleFunc("POST /v1/reload", s.handleReload)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/model", s.handleModel)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logger.Printf("writing response: %v", err)
	}
}

func (s *server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleAssign(w http.ResponseWriter, r *http.Request) {
	var req assignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if (req.Transactions == nil) == (req.Records == nil) {
		s.writeError(w, http.StatusBadRequest, "send exactly one of transactions or records")
		return
	}
	var txns []dataset.Transaction
	if req.Transactions != nil {
		txns = make([]dataset.Transaction, len(req.Transactions))
		for i, items := range req.Transactions {
			t := make(dataset.Transaction, 0, len(items))
			for _, it := range items {
				if it < 0 || it > 1<<31-1 {
					s.writeError(w, http.StatusBadRequest, "transaction %d: item %d out of range", i, it)
					return
				}
				t = append(t, dataset.Item(it))
			}
			t.Normalize()
			txns[i] = t
		}
	} else {
		// Records are encoded against the model the batch will be served
		// by: capture it once so a concurrent reload cannot split the two.
		a := s.engine.Model()
		txns = make([]dataset.Transaction, len(req.Records))
		for i, rec := range req.Records {
			t, err := a.EncodeRecord(rec)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, "record %d: %v", i, err)
				return
			}
			txns[i] = t
		}
	}
	s.writeJSON(w, http.StatusOK, assignResponse{Assignments: s.engine.AssignAll(txns)})
}

func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Path == "" {
		s.writeError(w, http.StatusBadRequest, "missing snapshot path")
		return
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	snap, err := model.Load(req.Path)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "loading snapshot: %v", err)
		return
	}
	a, err := model.Compile(snap)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "compiling snapshot: %v", err)
		return
	}
	s.engine.Swap(a)
	s.logger.Printf("reloaded model from %s (%d clusters, %d labeled transactions)",
		req.Path, a.Clusters(), len(snap.Txns))
	s.writeJSON(w, http.StatusOK, map[string]any{"ok": true, "model": infoOf(a)})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.engine.Metrics())
}

func (s *server) handleModel(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, infoOf(s.engine.Model()))
}
