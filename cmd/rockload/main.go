// Command rockload is a closed-loop load generator for rockd: each of -c
// workers keeps exactly one POST /v1/assign request in flight until -d
// elapses, then the tool reports throughput and client-side latency
// quantiles. Probe transactions are either sampled from a text-format
// transaction file (positional argument) or generated uniformly from
// -items/-size.
//
//	rockload -addr http://localhost:7745 -c 16 -d 30s -batch 32 txns.txt
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"rock/internal/dataset"
	"rock/internal/store"
)

type assignRequest struct {
	Transactions [][]int64 `json:"transactions"`
}

type assignResponse struct {
	Assignments []struct {
		Cluster int     `json:"cluster"`
		Score   float64 `json:"score"`
	} `json:"assignments"`
}

// workerResult is one worker's tally, merged after the run.
type workerResult struct {
	requests  int
	errors    int
	assigned  int
	outliers  int
	latencies []time.Duration
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rockload: ")
	var (
		addr     = flag.String("addr", "http://localhost:7745", "rockd base URL")
		workers  = flag.Int("c", 8, "concurrent closed-loop workers")
		duration = flag.Duration("d", 10*time.Second, "run duration")
		batch    = flag.Int("batch", 16, "transactions per request")
		items    = flag.Int("items", 1000, "generated probes: item-id universe size")
		size     = flag.Int("size", 12, "generated probes: items per transaction")
		seed     = flag.Int64("seed", 1, "probe generation seed")
	)
	flag.Parse()
	if *workers < 1 || *batch < 1 {
		log.Fatal("-c and -batch must be positive")
	}

	// Probe pool: a file of real transactions, or uniform random ones.
	var pool []dataset.Transaction
	if flag.NArg() > 0 {
		var err error
		if pool, err = store.LoadText(flag.Arg(0)); err != nil {
			log.Fatal(err)
		}
		if len(pool) == 0 {
			log.Fatalf("%s holds no transactions", flag.Arg(0))
		}
		log.Printf("probing with %d transactions from %s", len(pool), flag.Arg(0))
	} else {
		rng := rand.New(rand.NewSource(*seed))
		pool = make([]dataset.Transaction, 4096)
		for i := range pool {
			t := make([]dataset.Item, *size)
			for j := range t {
				t[j] = dataset.Item(rng.Intn(*items))
			}
			pool[i] = dataset.NewTransaction(t...)
		}
		log.Printf("probing with %d generated transactions (%d items, size %d)", len(pool), *items, *size)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(*duration)
	results := make([]workerResult, *workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			res := &results[w]
			for time.Now().Before(deadline) {
				req := assignRequest{Transactions: make([][]int64, *batch)}
				for i := range req.Transactions {
					t := pool[rng.Intn(len(pool))]
					ids := make([]int64, len(t))
					for j, it := range t {
						ids[j] = int64(it)
					}
					req.Transactions[i] = ids
				}
				body, err := json.Marshal(req)
				if err != nil {
					log.Fatal(err)
				}
				t0 := time.Now()
				resp, err := client.Post(*addr+"/v1/assign", "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				res.requests++
				if err != nil {
					res.errors++
					continue
				}
				payload, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					res.errors++
					continue
				}
				var ar assignResponse
				if err := json.Unmarshal(payload, &ar); err != nil {
					res.errors++
					continue
				}
				res.latencies = append(res.latencies, lat)
				res.assigned += len(ar.Assignments)
				for _, a := range ar.Assignments {
					if a.Cluster < 0 {
						res.outliers++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total workerResult
	for _, r := range results {
		total.requests += r.requests
		total.errors += r.errors
		total.assigned += r.assigned
		total.outliers += r.outliers
		total.latencies = append(total.latencies, r.latencies...)
	}
	fmt.Printf("%d requests (%d errors), %d assignments (%d outliers) in %.1fs\n",
		total.requests, total.errors, total.assigned, total.outliers, elapsed.Seconds())
	if total.requests > 0 {
		fmt.Printf("throughput: %.1f req/s, %.1f txn/s\n",
			float64(total.requests)/elapsed.Seconds(), float64(total.assigned)/elapsed.Seconds())
	}
	if len(total.latencies) > 0 {
		sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })
		q := func(p float64) time.Duration {
			i := int(p * float64(len(total.latencies)-1))
			return total.latencies[i]
		}
		fmt.Printf("latency: min %s  p50 %s  p90 %s  p99 %s  max %s\n",
			round(q(0)), round(q(0.50)), round(q(0.90)), round(q(0.99)), round(q(1)))
	}
	if total.errors > 0 {
		log.Fatalf("%d requests failed", total.errors)
	}
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
