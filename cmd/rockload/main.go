// Command rockload is a closed-loop load generator for rockd: each of -c
// workers keeps exactly one POST /v1/assign request in flight until -d
// elapses, then the tool reports throughput, client-side latency quantiles,
// and resilience tallies (shed responses seen, retries spent). Probe
// transactions are either sampled from a text-format transaction file
// (positional argument) or generated uniformly from -items/-size.
//
// Transient failures — connection errors, 429 (shed by the daemon's
// admission gate), 5xx — are retried with exponential backoff plus jitter,
// honoring Retry-After, up to -retries attempts per batch. Only a batch
// that exhausts its retries counts as an error, so a reload storm or a
// shedding burst shows up as retries, not as dropped work.
//
//	rockload -addr http://localhost:7745 -c 16 -d 30s -batch 32 -retries 5 txns.txt
//
// With -targets, workers are spread round-robin over several base URLs
// (replicas, or rockgate instances) and the report adds a per-target
// breakdown next to the fleet total. A batch's retries stay on the target
// that first attempted it, so per-target error tallies stay meaningful.
//
//	rockload -targets http://replica1:7745,http://replica2:7745 -c 16 -d 30s
//
// -codec selects the request codec: json (the default) or binary (the
// length-prefixed varint wire format of internal/wire, negotiated by
// Content-Type). A comma list spreads workers round-robin across codecs and
// the report adds a per-codec breakdown, so one run compares both formats
// against the same server under the same concurrency:
//
//	rockload -addr http://localhost:7745 -c 16 -codec json,binary -warmup 2s
//
// -model drives a multi-tenant registry (rockd -registry, or rockgate in
// front of one): a comma list of name=weight pairs mixes traffic over the
// named models in proportion — each batch picks its model by weighted
// draw and POSTs /v1/assign/{model} — and the report adds a per-model
// latency/throughput breakdown. A bare name means weight 1; weights are
// relative, not required to sum to anything:
//
//	rockload -addr http://gate:7746 -model alpha=0.7,beta=0.3 -codec json,binary -d 30s
//
// -warmup excludes samples taken in the first span of the run from every
// tally (throughput, latency, shed/retry counts), so connection setup, cold
// caches and JIT-warm paths do not skew the steady-state numbers.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rock/internal/dataset"
	"rock/internal/serve"
	"rock/internal/store"
	"rock/internal/wire"
)

type assignRequest struct {
	Transactions [][]int64 `json:"transactions"`
}

type assignResponse struct {
	Assignments []struct {
		Cluster int     `json:"cluster"`
		Score   float64 `json:"score"`
	} `json:"assignments"`
}

// workerResult is one worker's tally, merged after the run.
type workerResult struct {
	requests  int // batches attempted (excluding retries of the same batch)
	errors    int // batches dropped after exhausting retries
	retries   int // extra attempts spent on transient failures
	shed      int // 429 responses seen
	assigned  int
	outliers  int
	latencies []time.Duration
}

// merge folds another tally into r.
func (r *workerResult) merge(o workerResult) {
	r.requests += o.requests
	r.errors += o.errors
	r.retries += o.retries
	r.shed += o.shed
	r.assigned += o.assigned
	r.outliers += o.outliers
	r.latencies = append(r.latencies, o.latencies...)
}

// quantile reads the p-th latency quantile; latencies must be sorted.
func (r *workerResult) quantile(p float64) time.Duration {
	return r.latencies[int(p*float64(len(r.latencies)-1))]
}

// attemptOutcome classifies one HTTP attempt.
type attemptOutcome int

const (
	attemptOK attemptOutcome = iota
	attemptRetryable
	attemptFatal
)

// tryOnce posts one batch and classifies the result, returning the batch's
// assignment and outlier counts on success. contentType selects the codec
// the response is parsed with. retryAfter is the server-requested delay
// (zero unless the response carried Retry-After). counted gates the
// shed tally so warmup attempts stay out of the stats.
func tryOnce(client *http.Client, url string, body []byte, contentType string, res *workerResult, counted bool) (assigned, outliers int, outcome attemptOutcome, retryAfter time.Duration, lat time.Duration) {
	t0 := time.Now()
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	lat = time.Since(t0)
	if err != nil {
		// Connection refused/reset or client-side timeout: the daemon may
		// be restarting — retryable.
		return 0, 0, attemptRetryable, 0, lat
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, 0, attemptRetryable, 0, lat
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		if contentType == wire.ContentType {
			var asg []serve.Assignment
			if asg, err = wire.DecodeResponse(payload, nil); err != nil {
				return 0, 0, attemptFatal, 0, lat
			}
			for _, a := range asg {
				if a.Cluster < 0 {
					outliers++
				}
			}
			return len(asg), outliers, attemptOK, 0, lat
		}
		var out assignResponse
		if err := json.Unmarshal(payload, &out); err != nil {
			return 0, 0, attemptFatal, 0, lat
		}
		for _, a := range out.Assignments {
			if a.Cluster < 0 {
				outliers++
			}
		}
		return len(out.Assignments), outliers, attemptOK, 0, lat
	case resp.StatusCode == http.StatusTooManyRequests:
		if counted {
			res.shed++
		}
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			retryAfter = time.Duration(s) * time.Second
		}
		return 0, 0, attemptRetryable, retryAfter, lat
	case resp.StatusCode >= 500:
		return 0, 0, attemptRetryable, 0, lat
	default:
		// 4xx other than 429: the request itself is wrong; retrying cannot
		// help.
		return 0, 0, attemptFatal, 0, lat
	}
}

// backoffDelay is the pre-retry sleep: base·2^attempt with ±50% jitter,
// capped at 2s. The jitter decorrelates workers that were all shed by the
// same overload spike, so they do not stampede back in lockstep.
func backoffDelay(base time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base << attempt
	if max := 2 * time.Second; d > max {
		d = max
	}
	half := int64(d) / 2
	return time.Duration(half + rng.Int63n(half+1))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rockload: ")
	var (
		addr     = flag.String("addr", "http://localhost:7745", "rockd base URL")
		targets  = flag.String("targets", "", "comma-separated base URLs; overrides -addr, workers spread round-robin")
		workers  = flag.Int("c", 8, "concurrent closed-loop workers")
		duration = flag.Duration("d", 10*time.Second, "run duration")
		batch    = flag.Int("batch", 16, "transactions per request")
		items    = flag.Int("items", 1000, "generated probes: item-id universe size")
		size     = flag.Int("size", 12, "generated probes: items per transaction")
		seed     = flag.Int64("seed", 1, "probe generation seed")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-attempt request timeout")
		retries  = flag.Int("retries", 5, "max attempts per batch on 429/5xx/connection errors")
		backoff  = flag.Duration("backoff", 50*time.Millisecond, "base retry backoff (doubles per attempt, jittered)")
		codec    = flag.String("codec", "json", "comma-separated request codecs (json, binary); workers spread round-robin")
		modelMix = flag.String("model", "", "comma-separated name=weight registry model mix (e.g. alpha=0.7,beta=0.3); batches POST /v1/assign/{model} in proportion")
		warmup   = flag.Duration("warmup", 0, "exclude samples from the first span of the run from all stats")
	)
	flag.Parse()
	if *workers < 1 || *batch < 1 {
		log.Fatal("-c and -batch must be positive")
	}
	if *retries < 1 {
		log.Fatal("-retries must be positive")
	}
	urls := []string{*addr}
	if *targets != "" {
		urls = urls[:0]
		for _, u := range strings.Split(*targets, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, strings.TrimRight(u, "/"))
			}
		}
		if len(urls) == 0 {
			log.Fatal("-targets holds no URLs")
		}
	}
	if *workers < len(urls) {
		log.Fatalf("-c %d is fewer than the %d targets; every target needs at least one worker", *workers, len(urls))
	}
	var codecs []string
	for _, c := range strings.Split(*codec, ",") {
		switch c = strings.TrimSpace(c); c {
		case "json", "binary":
			codecs = append(codecs, c)
		case "":
		default:
			log.Fatalf("-codec %q: unknown codec (json, binary)", c)
		}
	}
	if len(codecs) == 0 {
		log.Fatal("-codec holds no codecs")
	}
	if *workers < len(codecs) {
		log.Fatalf("-c %d is fewer than the %d codecs; every codec needs at least one worker", *workers, len(codecs))
	}
	if *warmup >= *duration {
		log.Fatalf("-warmup %s must be shorter than -d %s", *warmup, *duration)
	}
	// The model mix: each batch draws one named model in weight proportion
	// and posts to /v1/assign/{name}; no -model keeps the legacy route.
	type modelShare struct {
		name   string
		weight float64
	}
	var mix []modelShare
	var mixTotal float64
	if *modelMix != "" {
		for _, part := range strings.Split(*modelMix, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			name, weight := part, 1.0
			if i := strings.IndexByte(part, '='); i >= 0 {
				var err error
				name = strings.TrimSpace(part[:i])
				weight, err = strconv.ParseFloat(strings.TrimSpace(part[i+1:]), 64)
				if err != nil || weight <= 0 {
					log.Fatalf("-model %q: weight must be a positive number", part)
				}
			}
			if name == "" {
				log.Fatalf("-model %q: empty model name", part)
			}
			mix = append(mix, modelShare{name, weight})
			mixTotal += weight
		}
		if len(mix) == 0 {
			log.Fatal("-model holds no models")
		}
	}

	// Probe pool: a file of real transactions, or uniform random ones.
	var pool []dataset.Transaction
	if flag.NArg() > 0 {
		var err error
		if pool, err = store.LoadText(flag.Arg(0)); err != nil {
			log.Fatal(err)
		}
		if len(pool) == 0 {
			log.Fatalf("%s holds no transactions", flag.Arg(0))
		}
		log.Printf("probing with %d transactions from %s", len(pool), flag.Arg(0))
	} else {
		rng := rand.New(rand.NewSource(*seed))
		pool = make([]dataset.Transaction, 4096)
		for i := range pool {
			t := make([]dataset.Item, *size)
			for j := range t {
				t[j] = dataset.Item(rng.Intn(*items))
			}
			pool[i] = dataset.NewTransaction(t...)
		}
		log.Printf("probing with %d generated transactions (%d items, size %d)", len(pool), *items, *size)
	}

	client := &http.Client{Timeout: *timeout}
	start := time.Now()
	deadline := start.Add(*duration)
	warmUntil := start.Add(*warmup)
	// Tallies are per (worker, model) so the per-model breakdown needs no
	// locking; without -model there is a single model slot per worker.
	nModels := len(mix)
	if nModels == 0 {
		nModels = 1
	}
	results := make([][]workerResult, *workers)
	for i := range results {
		results[i] = make([]workerResult, nModels)
	}
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			target := urls[w%len(urls)]
			cdc := codecs[w%len(codecs)]
			for time.Now().Before(deadline) {
				mi, path := 0, "/v1/assign"
				if len(mix) > 0 {
					draw := rng.Float64() * mixTotal
					for i := range mix {
						draw -= mix[i].weight
						if draw < 0 || i == len(mix)-1 {
							mi = i
							break
						}
					}
					path += "/" + mix[mi].name
				}
				res := &results[w][mi]
				txns := make([]dataset.Transaction, *batch)
				for i := range txns {
					txns[i] = pool[rng.Intn(len(pool))]
				}
				var body []byte
				contentType := "application/json"
				if cdc == "binary" {
					body = wire.AppendRequest(nil, txns)
					contentType = wire.ContentType
				} else {
					req := assignRequest{Transactions: make([][]int64, len(txns))}
					for i, t := range txns {
						ids := make([]int64, len(t))
						for j, it := range t {
							ids[j] = int64(it)
						}
						req.Transactions[i] = ids
					}
					var err error
					if body, err = json.Marshal(req); err != nil {
						log.Fatal(err)
					}
				}
				// A batch issued during warmup still runs (it is the warmup)
				// but leaves no trace in the tallies.
				counted := !time.Now().Before(warmUntil)
				if counted {
					res.requests++
				}
				delivered := false
				for attempt := 0; attempt < *retries; attempt++ {
					if attempt > 0 && counted {
						res.retries++
					}
					assigned, outliers, outcome, retryAfter, lat := tryOnce(client, target+path, body, contentType, res, counted)
					if outcome == attemptOK {
						if counted {
							res.latencies = append(res.latencies, lat)
							res.assigned += assigned
							res.outliers += outliers
						}
						delivered = true
						break
					}
					if outcome == attemptFatal {
						break
					}
					sleep := backoffDelay(*backoff, attempt, rng)
					if retryAfter > sleep {
						sleep = retryAfter
					}
					time.Sleep(sleep)
				}
				if !delivered && counted {
					res.errors++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start) - *warmup

	var total workerResult
	perTarget := make([]workerResult, len(urls))
	perCodec := make([]workerResult, len(codecs))
	perModel := make([]workerResult, nModels)
	for w := range results {
		for mi, r := range results[w] {
			total.merge(r)
			perTarget[w%len(urls)].merge(r)
			perCodec[w%len(codecs)].merge(r)
			perModel[mi].merge(r)
		}
	}
	if *warmup > 0 {
		fmt.Printf("warmup: first %s excluded from all stats\n", *warmup)
	}
	fmt.Printf("%d batches (%d dropped), %d assignments (%d outliers) in %.1fs\n",
		total.requests, total.errors, total.assigned, total.outliers, elapsed.Seconds())
	fmt.Printf("resilience: %d shed (429), %d retries spent\n", total.shed, total.retries)
	if total.requests > 0 {
		fmt.Printf("throughput: %.1f req/s, %.1f txn/s\n",
			float64(total.requests)/elapsed.Seconds(), float64(total.assigned)/elapsed.Seconds())
	}
	if len(total.latencies) > 0 {
		sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })
		fmt.Printf("latency: min %s  p50 %s  p90 %s  p99 %s  max %s\n",
			round(total.quantile(0)), round(total.quantile(0.50)), round(total.quantile(0.90)),
			round(total.quantile(0.99)), round(total.quantile(1)))
	}
	if len(mix) > 0 {
		fmt.Println("per-model:")
		for i := range mix {
			r := &perModel[i]
			line := fmt.Sprintf("  %-16s (weight %.2f) %6d batches (%d dropped)  %7.1f req/s  %9.1f txn/s  shed %d  retries %d",
				mix[i].name, mix[i].weight/mixTotal, r.requests, r.errors,
				float64(r.requests)/elapsed.Seconds(), float64(r.assigned)/elapsed.Seconds(), r.shed, r.retries)
			if len(r.latencies) > 0 {
				sort.Slice(r.latencies, func(a, b int) bool { return r.latencies[a] < r.latencies[b] })
				line += fmt.Sprintf("  p50 %s  p99 %s", round(r.quantile(0.50)), round(r.quantile(0.99)))
			}
			fmt.Println(line)
		}
	}
	if len(codecs) > 1 {
		fmt.Println("per-codec:")
		for i, c := range codecs {
			r := &perCodec[i]
			line := fmt.Sprintf("  %-8s %6d batches (%d dropped)  %7.1f req/s  %9.1f txn/s  shed %d  retries %d",
				c, r.requests, r.errors, float64(r.requests)/elapsed.Seconds(),
				float64(r.assigned)/elapsed.Seconds(), r.shed, r.retries)
			if len(r.latencies) > 0 {
				sort.Slice(r.latencies, func(a, b int) bool { return r.latencies[a] < r.latencies[b] })
				line += fmt.Sprintf("  p50 %s  p99 %s", round(r.quantile(0.50)), round(r.quantile(0.99)))
			}
			fmt.Println(line)
		}
	}
	if len(urls) > 1 {
		fmt.Println("per-target:")
		for i, url := range urls {
			r := &perTarget[i]
			line := fmt.Sprintf("  %-40s %6d batches (%d dropped)  %5.1f req/s  shed %d  retries %d",
				url, r.requests, r.errors, float64(r.requests)/elapsed.Seconds(), r.shed, r.retries)
			if len(r.latencies) > 0 {
				sort.Slice(r.latencies, func(a, b int) bool { return r.latencies[a] < r.latencies[b] })
				line += fmt.Sprintf("  p50 %s  p99 %s", round(r.quantile(0.50)), round(r.quantile(0.99)))
			}
			fmt.Println(line)
		}
	}
	if total.errors > 0 {
		log.Fatalf("%d batches dropped after %d attempts each", total.errors, *retries)
	}
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
