// Command rocktrain runs the sharded out-of-core training pipeline over a
// transaction file and publishes the trained labeling model.
//
// Train 10M transactions under a 256 MiB per-shard budget into a versioned
// snapshot directory, then roll the serving fleet onto it:
//
//	rocktrain -k 10 -theta 0.5 -mem-budget-mb 256 \
//	    -snapshot-dir /srv/rock/models -reload http://gate:7746 txns.bin
//
// Or pin the shard count explicitly:
//
//	rocktrain -k 10 -theta 0.5 -shards 8 -snapshot-dir models txns.txt
//
// The input is the transaction text format by default, or the binary format
// with -binary. The model lands as the next generation of -snapshot-dir
// (rockd -dir serves such directories); each -reload URL then receives a
// POST /v1/reload — a rockd replica reloads itself, a rockgate URL rolls the
// whole fleet — so a cron entry running rocktrain is a complete
// train-to-production loop with no human in the path.
//
// With -run-dir the run is crash-safe: spill shards and a stage-checkpoint
// journal live in that directory, SIGTERM/SIGINT stop the run at the next
// checkpoint, and re-running the same command with the same -run-dir resumes
// at the first incomplete stage — including the publish/reload tail — instead
// of starting over. -stage-timeout arms a per-stage watchdog on top, so a
// wedged stage turns into an exit-and-resume instead of a silent hang.
//
// -metrics-addr serves live progress counters in Prometheus text format
// while training runs (phase, transactions sharded, shards clustered,
// labeled/outlier counts, checkpoint/resume counters, heap peak).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rock/internal/model"
	"rock/internal/registry"
	"rock/internal/store"
	"rock/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rocktrain: ")
	var (
		k            = flag.Int("k", 2, "target number of global clusters")
		theta        = flag.Float64("theta", 0.5, "neighbor similarity threshold")
		simName      = flag.String("sim", "jaccard", "similarity: jaccard, dice, overlap or cosine")
		shards       = flag.Int("shards", 0, "shard count; 0 derives it from -mem-budget-mb")
		budgetMB     = flag.Int("mem-budget-mb", 0, "per-shard in-core memory target in MiB (used when -shards is 0)")
		minNbrs      = flag.Int("min-neighbors", 0, "per-shard: discard sampled points with fewer neighbors")
		stopMult     = flag.Float64("stop-multiple", 0, "per-shard: pause at this multiple of k and weed small clusters")
		minSize      = flag.Int("min-cluster-size", 0, "per-shard: weeding support threshold")
		uMin         = flag.Int("u-min", 0, "smallest cluster size the sample must represent (0 = auto)")
		numRep       = flag.Int("num-rep", 0, "representative points per shard cluster (0 = 10)")
		maxLabel     = flag.Int("max-label", 0, "labeled points kept per global cluster (0 = 128)")
		maxOutlier   = flag.Float64("max-outlier-rate", 0, "abort publish above this outlier fraction (0 = 0.5)")
		workers      = flag.Int("workers", 0, "parallelism inside neighbor/link computation (0 = all CPUs)")
		shardPar     = flag.Int("shard-parallel", 1, "shards processed concurrently (memory multiplies)")
		seed         = flag.Int64("seed", 1, "seed for sharding, sampling and labeled subsets")
		tmpDir       = flag.String("tmp", "", "directory for shard spill files when -run-dir is unset (default: system temp)")
		runDir       = flag.String("run-dir", "", "durable run directory: spill + stage journal live here and a rerun resumes where this one stopped")
		stageTimeout = flag.Duration("stage-timeout", 0, "per-stage watchdog: fail a stage that runs longer (0 = no watchdog)")
		binary       = flag.Bool("binary", false, "input is the binary transaction format")
		snapDir      = flag.String("snapshot-dir", "", "publish the model into this versioned snapshot directory")
		modelName    = flag.String("model-name", "", "registry model name: publish into <snapshot-dir>/<model-name> and reload via /v1/reload/<model-name>")
		snapName     = flag.String("snapshot-name", "model", "snapshot base name within -snapshot-dir")
		snapKeep     = flag.Int("snapshot-keep", 0, "generations to retain in -snapshot-dir (0 = default)")
		reload       = flag.String("reload", "", "comma-separated base URLs (rockd or rockgate) to POST /v1/reload after publishing")
		reloadTries  = flag.Int("reload-attempts", 0, "reload attempts per URL before giving up (0 = default)")
		reloadTime   = flag.Duration("reload-timeout", 0, "deadline per reload attempt (0 = default)")
		metricsAddr  = flag.String("metrics-addr", "", "serve live training counters on this address at /metrics")
		quiet        = flag.Bool("quiet", false, "suppress per-phase progress lines")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: rocktrain [flags] <transaction file>")
	}
	if *reload != "" && *snapDir == "" {
		log.Fatal("-reload requires -snapshot-dir (the fleet reloads from the published directory)")
	}
	path := flag.Arg(0)

	opener := func() (store.Scanner, io.Closer, error) {
		if *binary {
			return store.OpenBinary(path)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		return store.NewTextScanner(f), f, nil
	}

	ctr := &train.Counters{}
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", ctr)
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics endpoint: %v", err)
			}
		}()
	}

	// SIGTERM/SIGINT cancel the run context: the pipeline stops at the next
	// cooperative point with everything already checkpointed (when -run-dir
	// is set), and the same command resumes.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	cfg := train.Config{
		K:              *k,
		Theta:          *theta,
		SimName:        *simName,
		MinNeighbors:   *minNbrs,
		StopMultiple:   *stopMult,
		MinClusterSize: *minSize,
		Workers:        *workers,
		ShardParallel:  *shardPar,
		Shards:         *shards,
		MemBudget:      int64(*budgetMB) << 20,
		UMin:           *uMin,
		NumRep:         *numRep,
		MaxLabel:       *maxLabel,
		MaxOutlierRate: *maxOutlier,
		Seed:           *seed,
		TmpDir:         *tmpDir,
		RunDir:         *runDir,
		StageTimeout:   *stageTimeout,
		Counters:       ctr,
	}
	if !*quiet {
		cfg.Log = log.New(os.Stderr, "rocktrain: ", 0)
	}

	start := time.Now()
	res, err := train.TrainContext(ctx, opener, cfg)
	if err != nil {
		if res != nil {
			fmt.Printf("training failed after %s: outlier rate %.4f over %d transactions\n",
				time.Since(start).Round(time.Millisecond), res.OutlierRate, res.Total)
		}
		if *runDir != "" && (errors.Is(err, context.Canceled) || errors.Is(err, train.ErrStageTimeout)) {
			log.Printf("%v", err)
			log.Fatalf("run interrupted; completed stages are journaled — rerun with -run-dir %s to resume", *runDir)
		}
		log.Fatal(err)
	}
	fmt.Printf("trained %d transactions: %d shards (sample %d/shard), %d shard clusters -> %d global, "+
		"%d labeled, %d outliers (rate %.4f), heap peak %.1f MiB, %s\n",
		res.Total, res.Shards, res.SampleTarget, res.ShardClusters, res.Clusters,
		res.Labeled, res.Outliers, res.OutlierRate,
		float64(res.HeapPeak)/(1<<20), time.Since(start).Round(time.Millisecond))
	for phase, d := range res.PhaseDurations {
		fmt.Printf("  phase %-8s %s\n", phase, d.Round(time.Millisecond))
	}

	if *snapDir == "" {
		if *modelName != "" {
			log.Fatal("-model-name requires -snapshot-dir (the registry root)")
		}
		fmt.Println("no -snapshot-dir: model discarded after training (dry run)")
		return
	}
	publishDir := *snapDir
	if *modelName != "" {
		// -model-name targets one tenant of a multi-model registry root:
		// the snapshot lands in its own subdirectory and the reload tail
		// walks only that model across the fleet.
		if !registry.ValidName(*modelName) {
			log.Fatalf("invalid -model-name %q: letters, digits, dot, underscore and dash only", *modelName)
		}
		publishDir = filepath.Join(*snapDir, *modelName)
	}
	if err := os.MkdirAll(publishDir, 0o755); err != nil {
		log.Fatal(err)
	}
	dir, err := model.OpenDir(store.OS, publishDir, *snapName, *snapKeep)
	if err != nil {
		log.Fatal(err)
	}
	// res.Run journals the publish/reload tail when -run-dir is set: a crash
	// after publishing but before every fleet reload lands re-runs only the
	// reloads that never succeeded, and never publishes twice.
	entry, skipped, err := res.Run.Publish(dir, res.Snapshot)
	if err != nil {
		log.Fatal(err)
	}
	ctr.SnapshotSeq.Store(int64(entry.Seq))
	if skipped {
		fmt.Printf("already published as generation %d: %s\n", entry.Seq, entry.Path)
	} else {
		fmt.Printf("published generation %d: %s\n", entry.Seq, entry.Path)
	}

	ropt := train.ReloadOptions{
		Attempts: *reloadTries,
		Timeout:  *reloadTime,
		Counters: ctr,
		Model:    *modelName,
		OnRetry: func(err error, delay time.Duration) {
			if !*quiet {
				log.Printf("reload retry in %s: %v", delay.Round(time.Millisecond), err)
			}
		},
	}
	client := &http.Client{}
	for _, base := range strings.Split(*reload, ",") {
		base = strings.TrimSpace(base)
		if base == "" {
			continue
		}
		seq, skipped, err := res.Run.PostReload(ctx, client, base, ropt)
		if err != nil {
			if *runDir != "" {
				log.Printf("reload %s: %v", base, err)
				log.Fatalf("publish is journaled; rerun with -run-dir %s to retry only the failed reloads", *runDir)
			}
			log.Fatalf("reload %s: %v", base, err)
		}
		ctr.ReloadPosted.Add(1)
		if skipped {
			fmt.Printf("already reloaded %s -> generation %d\n", base, seq)
		} else {
			fmt.Printf("reloaded %s -> generation %d\n", base, seq)
		}
	}
}
