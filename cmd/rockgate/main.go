// Command rockgate fronts a fleet of rockd replicas with one HTTP
// endpoint: health-checked routing, power-of-two-choices load balancing,
// hedged requests, budgeted retries, model-version skew detection and
// coordinated rolling reloads.
//
//	rockgate -addr :7744 -backends http://10.0.0.1:7745,http://10.0.0.2:7745
//
// API (see internal/gate):
//
//	POST /v1/assign   proxied into the fleet (P2C + hedging + retries);
//	                  responses keep the winning replica's X-Rock-Model-Seq
//	POST /v1/reload   coordinated rolling reload: one replica at a time is
//	                  drained, reloaded to its newest snapshot generation,
//	                  and verified ready on the new seq before the next —
//	                  capacity never drops below N−1
//	GET  /v1/fleet    per-replica health, seq, in-flight and counters
//	GET  /healthz     liveness (process up)
//	GET  /readyz      readiness (≥1 routable backend)
//	GET  /metrics     gateway counters + fleet-aggregated replica counters
//	                  (Prometheus text exposition)
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rock/internal/gate"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	logger := log.New(os.Stderr, "rockgate: ", log.LstdFlags|log.Lmicroseconds)
	var (
		addr           = flag.String("addr", ":7744", "listen address")
		backends       = flag.String("backends", "", "comma-separated rockd base URLs (required)")
		probeInterval  = flag.Duration("probe-interval", time.Second, "readiness probe period")
		probeTimeout   = flag.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
		ejectAfter     = flag.Int("eject-after", 3, "consecutive probe failures before ejection")
		reinstateAfter = flag.Int("reinstate-after", 2, "consecutive probe successes before an ejected replica is reinstated")
		hedgeMin       = flag.Duration("hedge-min", time.Millisecond, "lower clamp on the adaptive hedge delay")
		hedgeMax       = flag.Duration("hedge-max", 250*time.Millisecond, "upper clamp on the adaptive hedge delay")
		noHedge        = flag.Bool("no-hedge", false, "disable hedged requests")
		retryRatio     = flag.Float64("retry-ratio", 0.2, "retry budget refill per admitted request")
		retryBurst     = flag.Float64("retry-burst", 16, "retry budget bucket size")
		reqTimeout     = flag.Duration("req-timeout", 30*time.Second, "per-request deadline")
		drainTimeout   = flag.Duration("reload-drain-timeout", 10*time.Second, "rolling reload: per-replica drain timeout")
		reloadTimeout  = flag.Duration("reload-timeout", 30*time.Second, "rolling reload: per-replica reload+verify timeout")
		shutdownDrain  = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		logger.Fatal("usage: rockgate -backends http://host1:7745,http://host2:7745 [-addr :7744]")
	}

	g := gate.New(gate.Config{
		Backends:       urls,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		EjectAfter:     *ejectAfter,
		ReinstateAfter: *reinstateAfter,
		HedgeMin:       *hedgeMin,
		HedgeMax:       *hedgeMax,
		DisableHedging: *noHedge,
		RetryRatio:     *retryRatio,
		RetryBurst:     *retryBurst,
		ReqTimeout:     *reqTimeout,
		DrainTimeout:   *drainTimeout,
		ReloadTimeout:  *reloadTimeout,
	}, logger)
	defer g.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           g,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("fronting %d replicas, listening on %s", len(urls), *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		logger.Fatalf("server: %v", err)
	case <-ctx.Done():
	}

	logger.Printf("signal received, draining for up to %s", *shutdownDrain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownDrain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
}
