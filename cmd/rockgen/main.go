// Command rockgen generates the paper's four data sets to disk.
//
// Usage:
//
//	rockgen -dataset basket   -out txns.txt            [-scale 1] [-mult 1] [-seed 1]
//	rockgen -dataset votes    -out votes.cat           [-seed 1]
//	rockgen -dataset mushroom -out mushroom.cat        [-seed 1]
//	rockgen -dataset funds    -out funds.cat           [-seed 1]
//
// With -drift-every N (basket only) the generator switches to the
// drifting-basket stream: -n transactions are drawn in stream order, and
// every N draws a fraction -drift-frac of each cluster's defining items is
// rotated to fresh ids — the ground-truth corpus for drift drills against
// rockstream.
//
// The basket data set is written in the transaction text format (one
// space-separated transaction per line; add -binary for the compact binary
// format); the categorical data sets are written in the categorical format
// with a schema header. Ground-truth labels go to <out>.labels, one label
// per line (-1 marks outliers).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"rock/internal/datagen"
	"rock/internal/dataset"
	"rock/internal/store"
	"rock/internal/timeseries"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rockgen: ")
	var (
		ds         = flag.String("dataset", "basket", "data set: basket, votes, mushroom or funds")
		out        = flag.String("out", "", "output path (required)")
		seed       = flag.Int64("seed", 1, "generator seed")
		scale      = flag.Int("scale", 1, "basket only: divide cluster sizes by this factor")
		mult       = flag.Int("mult", 1, "basket only: multiply cluster sizes by this factor (large training corpora; 100 ≈ 11.5M txns)")
		binary     = flag.Bool("binary", false, "basket only: write the binary transaction format")
		driftEvery = flag.Int("drift-every", 0, "basket only: rotate cluster vocabularies every N transactions (0 = stationary batch)")
		driftFrac  = flag.Float64("drift-frac", 0.25, "basket only: fraction of each cluster's defining items rotated per drift step")
		n          = flag.Int("n", 0, "basket drift mode: number of transactions to draw (default: the configured corpus size)")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("-out is required")
	}
	rng := rand.New(rand.NewSource(*seed))

	var labels []int
	switch *ds {
	case "basket":
		if *scale > 1 && *mult > 1 {
			log.Fatal("-scale and -mult are mutually exclusive")
		}
		cfg := datagen.DefaultBasketConfig()
		if *scale > 1 {
			cfg = datagen.ScaledBasketConfig(*scale)
		}
		if *mult > 1 {
			cfg = datagen.MultipliedBasketConfig(*mult)
		}
		if *driftEvery > 0 {
			if *driftFrac <= 0 || *driftFrac > 1 {
				log.Fatalf("-drift-frac %v out of (0,1]", *driftFrac)
			}
			stream := datagen.NewDriftStream(datagen.DriftConfig{
				Basket:     cfg,
				DriftEvery: *driftEvery,
				DriftFrac:  *driftFrac,
			}, rng)
			count := *n
			if count <= 0 {
				count = cfg.Outliers
				for _, s := range cfg.ClusterSizes {
					count += s
				}
			}
			txns := make([]dataset.Transaction, count)
			labels = make([]int, count)
			for i := 0; i < count; i++ {
				txns[i], labels[i] = stream.Next()
			}
			var err error
			if *binary {
				err = store.SaveBinary(*out, txns)
			} else {
				err = store.SaveText(*out, txns)
			}
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %d drifting transactions (%d rotations, %d items) to %s\n",
				count, stream.Rotations(), stream.NumItems(), *out)
			break
		}
		d := datagen.Basket(cfg, rng)
		var err error
		if *binary {
			err = store.SaveBinary(*out, d.Txns)
		} else {
			err = store.SaveText(*out, d.Txns)
		}
		if err != nil {
			log.Fatal(err)
		}
		labels = d.Labels
		fmt.Printf("wrote %d transactions over %d items to %s\n", len(d.Txns), d.NumItems, *out)
	case "votes":
		d := datagen.Votes(datagen.DefaultVotesConfig(), rng)
		if err := store.SaveCategorical(*out, d.Schema, d.Records); err != nil {
			log.Fatal(err)
		}
		labels = d.Labels
		fmt.Printf("wrote %d voting records to %s\n", len(d.Records), *out)
	case "mushroom":
		d := datagen.Mushroom(datagen.DefaultMushroomConfig(), rng)
		if err := store.SaveCategorical(*out, d.Schema, d.Records); err != nil {
			log.Fatal(err)
		}
		labels = d.Labels
		fmt.Printf("wrote %d mushroom records to %s\n", len(d.Records), *out)
	case "funds":
		d := datagen.Funds(datagen.DefaultFundsConfig(), rng)
		recs := timeseries.DiscretizeAll(d.Series)
		schema := timeseries.ChangeSchema(timeseries.FundCalendar())
		if err := store.SaveCategorical(*out, schema, recs); err != nil {
			log.Fatal(err)
		}
		labels = d.Labels
		fmt.Printf("wrote %d fund records (%d change attributes) to %s\n", len(recs), schema.NumAttrs(), *out)
	default:
		log.Fatalf("unknown dataset %q", *ds)
	}

	lp := *out + ".labels"
	if err := writeLabels(lp, labels); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote ground-truth labels to %s\n", lp)
}

func writeLabels(path string, labels []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, l := range labels {
		fmt.Fprintln(w, l)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
