// Command rockstream is the online clustering daemon: it ingests an
// unbounded transaction stream, folds every arrival into an evolving ROCK
// clustering, and continuously publishes model generations the serving
// fleet hot-reloads — the always-on counterpart to the batch rocktrain run.
//
// Ingest a stream over HTTP, publish every 30s or 5000 absorbed
// transactions into a versioned snapshot directory, and roll the fleet
// behind a rockgate on every generation:
//
//	rockstream -theta 0.5 -listen :7748 \
//	    -snapshot-dir /srv/rock/models \
//	    -publish-interval 30s -publish-every 5000 \
//	    -reload http://gate:7746
//
// Transactions arrive as POST /v1/ingest bodies in the transaction text
// format (one per line), and/or by following a growing file with -tail
// (tail -f semantics; -tail-from-start replays existing content first).
// GET /v1/stream reports live clustering state, GET /metrics the Prometheus
// counters (fold outcomes, pool mechanics, drift score, fold latency), and
// POST /v1/publish forces a guarded publish.
//
// On startup the daemon seeds its clusters from the newest generation
// already in -snapshot-dir, so a restart resumes folding into the clusters
// the fleet is serving instead of re-discovering them from scratch. The
// drift guard (-max-outlier-rate, -regress-bound) refuses to publish while
// the rolling outlier rate says the clusterer has not caught up with the
// stream — the fleet keeps serving the last good generation instead.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rock/internal/dataset"
	"rock/internal/model"
	"rock/internal/registry"
	"rock/internal/store"
	"rock/internal/stream"
	"rock/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rockstream: ")
	var (
		theta       = flag.Float64("theta", 0.5, "neighbor similarity threshold")
		simName     = flag.String("sim", "jaccard", "similarity: jaccard, dice, overlap or cosine")
		numRep      = flag.Int("num-rep", 0, "representative transactions per cluster (0 = 8)")
		foldGood    = flag.Float64("fold-goodness", 0, "minimum Eq. 2 goodness to absorb an arrival (0 = 0.2)")
		maxLabel    = flag.Int("max-label", 0, "labeled reservoir size per cluster (0 = 128)")
		poolCap     = flag.Int("pool-cap", 0, "outlier pool capacity (0 = 4096)")
		reclusterN  = flag.Int("recluster-every", 0, "re-cluster the pool after this many pooled arrivals (0 = 512)")
		minPromote  = flag.Int("min-promote", 0, "minimum pool-cluster size promoted to a cluster (0 = 8)")
		maxAge      = flag.Int("max-age", 0, "age out pool entries after this many arrivals (0 = 8192)")
		window      = flag.Int("window", 0, "sliding window for the rolling outlier rate (0 = 2048)")
		seed        = flag.Int64("seed", 1, "seed for reservoir sampling and representative scatter")
		listen      = flag.String("listen", ":7748", "HTTP listen address")
		tailPath    = flag.String("tail", "", "follow this transaction text file as an ingest source")
		tailStart   = flag.Bool("tail-from-start", false, "replay the tailed file's existing content before following")
		tailPoll    = flag.Duration("tail-poll", 0, "tail polling interval (0 = 200ms)")
		snapDir     = flag.String("snapshot-dir", "", "versioned snapshot directory generations are published into (required)")
		modelName   = flag.String("model-name", "", "registry model name: publish into <snapshot-dir>/<model-name> and reload via /v1/reload/<model-name>")
		snapName    = flag.String("snapshot-name", "model", "snapshot base name within -snapshot-dir")
		snapKeep    = flag.Int("snapshot-keep", 0, "generations to retain (0 = default)")
		noSeed      = flag.Bool("no-seed", false, "do not seed clusters from the newest existing generation")
		pubInterval = flag.Duration("publish-interval", time.Minute, "publish a generation at least this often")
		pubEvery    = flag.Int64("publish-every", 0, "additionally publish after this many absorbed transactions (0 = timer only)")
		maxOutlier  = flag.Float64("max-outlier-rate", 0, "drift guard: refuse publishing above this rolling outlier rate (0 = 0.9, negative disables)")
		regress     = flag.Float64("regress-bound", 0, "drift guard: refuse publishing when the rate regressed past the last generation by more (0 = 0.25, negative disables)")
		minWindow   = flag.Int("guard-min-window", 0, "arrivals the window must cover before the guard engages (0 = 256)")
		reload      = flag.String("reload", "", "comma-separated base URLs (rockd or rockgate) to POST /v1/reload after each publish")
		reloadTries = flag.Int("reload-attempts", 0, "reload attempts per URL before giving up (0 = default)")
		reloadTime  = flag.Duration("reload-timeout", 0, "deadline per reload attempt (0 = default)")
	)
	flag.Parse()
	if *snapDir == "" {
		log.Fatal("-snapshot-dir is required")
	}
	publishDir := *snapDir
	if *modelName != "" {
		// -model-name targets one tenant of a multi-model registry root.
		if !registry.ValidName(*modelName) {
			log.Fatalf("invalid -model-name %q: letters, digits, dot, underscore and dash only", *modelName)
		}
		publishDir = filepath.Join(*snapDir, *modelName)
		if err := os.MkdirAll(publishDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	c := stream.New(stream.Config{
		Theta:           *theta,
		SimName:         *simName,
		NumRep:          *numRep,
		MinFoldGoodness: *foldGood,
		MaxLabel:        *maxLabel,
		PoolCap:         *poolCap,
		ReclusterEvery:  *reclusterN,
		MinPromote:      *minPromote,
		MaxAge:          *maxAge,
		WindowSize:      *window,
		Seed:            *seed,
	})

	dir, err := model.OpenDir(store.OS, publishDir, *snapName, *snapKeep)
	if err != nil {
		log.Fatal(err)
	}
	if !*noSeed {
		snap, entry, _, err := dir.LoadLatest()
		switch {
		case errors.Is(err, model.ErrNoSnapshots):
			log.Printf("starting cold: no generation in %s yet", *snapDir)
		case err != nil:
			log.Fatal(err)
		default:
			if err := c.Seed(snap); err != nil {
				log.Fatal(err)
			}
			log.Printf("seeded %d clusters from generation %d (%s)", len(snap.Sets), entry.Seq, entry.Path)
		}
	}

	var fleet []string
	if *reload != "" {
		for _, u := range strings.Split(*reload, ",") {
			if u = strings.TrimSpace(u); u != "" {
				fleet = append(fleet, u)
			}
		}
	}
	pub := stream.NewPublisher(c, stream.PublishConfig{
		Dir:            dir,
		Fleet:          fleet,
		Interval:       *pubInterval,
		EveryAbsorbed:  *pubEvery,
		MaxOutlierRate: *maxOutlier,
		RegressBound:   *regress,
		MinWindow:      *minWindow,
		Reload:         train.ReloadOptions{Attempts: *reloadTries, Timeout: *reloadTime, Model: *modelName},
		Logf:           log.Printf,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	go pub.Run(ctx)

	if *tailPath != "" {
		t := &stream.Tailer{
			Path:      *tailPath,
			Poll:      *tailPoll,
			FromStart: *tailStart,
			OnError: func(line string, err error) {
				c.Metrics().IngestErrors.Add(1)
			},
		}
		go func() {
			log.Printf("tailing %s", *tailPath)
			t.Run(ctx, func(txn dataset.Transaction) { c.Observe(txn) })
		}()
	}

	srv := &http.Server{Handler: stream.NewServer(c, pub)}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", l.Addr())
	go func() {
		if err := srv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	<-ctx.Done()
	log.Print("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutCtx)
	// One last guarded publish so the fleet gets everything absorbed since
	// the previous generation.
	if entry, err := pub.TryPublish(shutCtx); err == nil {
		log.Printf("final generation %d published", entry.Seq)
	} else if !errors.Is(err, stream.ErrNoClusters) && !errors.Is(err, stream.ErrGuarded) {
		log.Printf("final publish: %v", err)
	}
}
