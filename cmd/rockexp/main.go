// Command rockexp regenerates the ROCK paper's evaluation: every table and
// figure of Section 5, plus the worked examples of Sections 1-3.
//
// Usage:
//
//	rockexp                 # run everything
//	rockexp -exp table2     # one experiment: table1..table7, table89,
//	                        # table5, table6, figure5, figure1
//	rockexp -seed 7         # different generator seed
//
// The output is the measured counterpart of each paper table; EXPERIMENTS.md
// records the run with the default seed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"rock/internal/experiments"
)

type experiment struct {
	name string
	desc string
	run  func(seed int64) (fmt.Stringer, error)
}

var all = []experiment{
	{"table1", "data set characteristics", func(s int64) (fmt.Stringer, error) {
		return experiments.Table1(s), nil
	}},
	{"figure1", "Figure 1 / Example 1.2 link counts", func(s int64) (fmt.Stringer, error) {
		return experiments.Figure1(), nil
	}},
	{"table2", "congressional votes: traditional vs ROCK", func(s int64) (fmt.Stringer, error) {
		return experiments.Table2(s)
	}},
	{"table3", "mushroom: traditional vs ROCK", func(s int64) (fmt.Stringer, error) {
		return experiments.Table3(s)
	}},
	{"table4", "mutual funds: ROCK clusters", func(s int64) (fmt.Stringer, error) {
		return experiments.Table4(s)
	}},
	{"table5", "synthetic data set parameters", func(s int64) (fmt.Stringer, error) {
		return experiments.Table5(s), nil
	}},
	{"table6", "misclassified transactions vs sample size", func(s int64) (fmt.Stringer, error) {
		return experiments.Table6(s, experiments.DefaultTable6SampleSizes, experiments.DefaultTable6Thetas)
	}},
	{"figure5", "scalability: runtime vs sample size", func(s int64) (fmt.Stringer, error) {
		return experiments.Figure5(s, experiments.DefaultTable6SampleSizes, experiments.DefaultFigure5Thetas)
	}},
	{"table7", "vote cluster characteristics", func(s int64) (fmt.Stringer, error) {
		return experiments.Table7(s)
	}},
	{"table89", "mushroom cluster characteristics", func(s int64) (fmt.Stringer, error) {
		return experiments.Table89(s)
	}},
	{"section2", "[HKKM97] item-clustering baseline vs ROCK", func(s int64) (fmt.Stringer, error) {
		return experiments.Section2(s, 50)
	}},
	{"baselines", "every algorithm head-to-head on the basket workload", func(s int64) (fmt.Stringer, error) {
		return experiments.Baselines(s, 1000)
	}},
	{"overlap", "quality vs cluster-overlap fraction: ROCK vs k-means", func(s int64) (fmt.Stringer, error) {
		return experiments.OverlapSweep(s, experiments.DefaultOverlapFracs)
	}},
	{"fundscorr", "funds under the [ALSS95]-style correlation similarity", func(s int64) (fmt.Stringer, error) {
		return experiments.FundsCorr(s)
	}},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rockexp: ")
	var (
		exp  = flag.String("exp", "", "run one experiment (default: all)")
		seed = flag.Int64("seed", experiments.DefaultSeed, "generator seed")
	)
	flag.Parse()

	selected := all
	if *exp != "" {
		selected = nil
		for _, e := range all {
			if e.name == *exp {
				selected = []experiment{e}
			}
		}
		if selected == nil {
			var names []string
			for _, e := range all {
				names = append(names, e.name)
			}
			log.Fatalf("unknown experiment %q; have: %s", *exp, strings.Join(names, ", "))
		}
	}

	for _, e := range selected {
		fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
		start := time.Now()
		res, err := e.run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rockexp: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(res)
		fmt.Printf("---- %s done in %v ----\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
}
