// Command rock clusters a data file with the ROCK algorithm.
//
// Transaction files (text format, one transaction per line):
//
//	rock -k 10 -theta 0.5 txns.txt
//
// Categorical files (schema header + comma-separated records, "?" missing):
//
//	rock -categorical -k 2 -theta 0.73 votes.cat
//	rock -categorical -pairwise -k 16 -theta 0.8 funds.cat
//
// Large transaction files can be clustered through the sampling pipeline:
//
//	rock -k 10 -theta 0.5 -sample 4000 txns.txt
//
// -snapshot additionally persists the trained labeling model (Section 4.6)
// so the rockd daemon can serve assignments from it:
//
//	rock -k 10 -theta 0.5 -sample 4000 -snapshot model.rockm txns.txt
//	rockd -model model.rockm
//
// -snapshot-dir instead publishes the model as the next generation of a
// versioned snapshot directory, the layout rockd -dir serves with live
// reloads (and the one rocktrain publishes into):
//
//	rock -k 10 -theta 0.5 -sample 4000 -snapshot-dir models txns.txt
//	rockd -dir models
//
// Output: one line per cluster listing its member record numbers (0-based),
// then a line of outliers. With -sample, every record of the file is
// assigned via the labeling phase.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"rock"
	"rock/internal/model"
	"rock/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rock: ")
	var (
		k           = flag.Int("k", 2, "desired number of clusters (a hint, per the paper)")
		theta       = flag.Float64("theta", 0.5, "neighbor similarity threshold")
		categorical = flag.Bool("categorical", false, "input is a categorical file, not transactions")
		pairwise    = flag.Bool("pairwise", false, "categorical only: use the pairwise common-attribute similarity (time-series rule)")
		sampleSize  = flag.Int("sample", 0, "cluster a random sample of this size and label the rest (transactions only)")
		minNbrs     = flag.Int("min-neighbors", 0, "discard points with fewer neighbors as outliers")
		stopMult    = flag.Float64("stop-multiple", 0, "pause at this multiple of k clusters and weed small clusters")
		minSize     = flag.Int("min-cluster-size", 0, "weeding support threshold")
		seed        = flag.Int64("seed", 1, "seed for sampling and labeling")
		snapshot    = flag.String("snapshot", "", "write the trained labeling model to this path (for rockd)")
		snapDir     = flag.String("snapshot-dir", "", "publish the labeling model into this versioned snapshot directory (for rockd -dir)")
		snapName    = flag.String("snapshot-name", "model", "snapshot base name within -snapshot-dir")
		snapKeep    = flag.Int("snapshot-keep", 0, "generations to retain in -snapshot-dir (0 = default)")
		quiet       = flag.Bool("quiet", false, "print only summary statistics")
		components  = flag.Bool("components", false, "QROCK mode: report connected components of the neighbor graph instead of running the merge loop (transactions only)")
		bestK       = flag.Bool("bestk", false, "ignore -k, merge fully with tracing and report the criterion-peak cluster count (transactions only)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: rock [flags] <file>")
	}
	path := flag.Arg(0)

	wantModel := *snapshot != "" || *snapDir != ""
	persist := func(lab *rock.Labeler) {
		if *snapshot != "" {
			saveSnapshot(lab, *snapshot)
		}
		if *snapDir != "" {
			saveSnapshotDir(lab, *snapDir, *snapName, *snapKeep)
		}
	}

	cfg := rock.Config{
		K: *k, Theta: *theta,
		MinNeighbors: *minNbrs, StopMultiple: *stopMult, MinClusterSize: *minSize,
	}

	switch {
	case *components:
		if wantModel {
			log.Fatal("-snapshot/-snapshot-dir require a clustering mode, not -components")
		}
		txns, err := store.LoadText(path)
		if err != nil {
			log.Fatal(err)
		}
		comps := rock.Components(txns, *theta, nil)
		fmt.Printf("neighbor-graph components at theta=%.2f: %d\n", *theta, len(comps))
		if !*quiet {
			for ci, members := range comps {
				fmt.Printf("component %d (%d):", ci+1, len(members))
				printMembers(members)
			}
		}
	case *bestK:
		if wantModel {
			log.Fatal("-snapshot/-snapshot-dir require a clustering mode, not -bestk")
		}
		txns, err := store.LoadText(path)
		if err != nil {
			log.Fatal(err)
		}
		cfg.K = 1
		cfg.TraceMerges = true
		res, err := rock.ClusterTransactions(txns, cfg)
		if err != nil {
			log.Fatal(err)
		}
		k := rock.BestK(res.Trace, res.F)
		fmt.Printf("suggested cluster count (criterion peak): %d\n", k)
		traj := rock.CriterionTrajectory(res.Trace, res.F)
		if len(traj) > 0 {
			fmt.Printf("criterion E_l after final merge: %.4f\n", traj[len(traj)-1])
		}
	case *categorical:
		schema, records, err := store.LoadCategorical(path)
		if err != nil {
			log.Fatal(err)
		}
		var res *rock.Result
		if *pairwise {
			res, err = rock.ClusterRecordsPairwise(records, cfg)
		} else {
			res, err = rock.ClusterRecords(schema, records, cfg)
		}
		if err != nil {
			log.Fatal(err)
		}
		printResult(res, *quiet)
		if wantModel {
			if *pairwise {
				log.Fatal("-snapshot does not support -pairwise (the pairwise similarity is not transaction-based)")
			}
			txns := rock.NewEncoder(schema).EncodeAll(records)
			lab, err := rock.NewLabeler(txns, res, cfg, rock.LabelerConfig{Seed: *seed})
			if err != nil {
				log.Fatal(err)
			}
			lab.SetSchema(schema)
			persist(lab)
		}
	case *sampleSize > 0:
		lr, err := rock.ClusterScanner(func() (store.Scanner, io.Closer, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, nil, err
			}
			return store.NewTextScanner(f), f, nil
		}, rock.PipelineConfig{Cluster: cfg, SampleSize: *sampleSize, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sampled %d, clustered into %d clusters, labeled %d remaining records\n",
			len(lr.Sample), len(lr.SampleResult.Clusters), lr.Labeled)
		if !*quiet {
			for ci, members := range lr.Clusters() {
				fmt.Printf("cluster %d (%d):", ci+1, len(members))
				printMembers(members)
			}
		}
		if wantModel {
			persist(lr.Labeler)
		}
	default:
		txns, err := store.LoadText(path)
		if err != nil {
			log.Fatal(err)
		}
		res, err := rock.ClusterTransactions(txns, cfg)
		if err != nil {
			log.Fatal(err)
		}
		printResult(res, *quiet)
		if wantModel {
			lab, err := rock.NewLabeler(txns, res, cfg, rock.LabelerConfig{Seed: *seed})
			if err != nil {
				log.Fatal(err)
			}
			persist(lab)
		}
	}
}

func saveSnapshot(lab *rock.Labeler, path string) {
	if err := lab.SaveSnapshot(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("labeling model written to %s (serve it: rockd -model %s)\n", path, path)
}

func saveSnapshotDir(lab *rock.Labeler, dirPath, name string, keep int) {
	snap, err := lab.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(dirPath, 0o755); err != nil {
		log.Fatal(err)
	}
	dir, err := model.OpenDir(store.OS, dirPath, name, keep)
	if err != nil {
		log.Fatal(err)
	}
	entry, err := dir.Save(snap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("labeling model published as generation %d: %s (serve it: rockd -dir %s)\n",
		entry.Seq, entry.Path, dirPath)
}

func printResult(res *rock.Result, quiet bool) {
	fmt.Printf("clusters: %d  outliers: %d  criterion E_l: %.4f  merges: %d\n",
		len(res.Clusters), len(res.Outliers), res.Criterion, res.Stats.Merges)
	if res.Stats.StoppedNoLinks {
		fmt.Println("note: merging stopped early — no links between remaining clusters")
	}
	if quiet {
		return
	}
	for ci, members := range res.Clusters {
		fmt.Printf("cluster %d (%d):", ci+1, len(members))
		printMembers(members)
	}
	if len(res.Outliers) > 0 {
		fmt.Printf("outliers (%d):", len(res.Outliers))
		printMembers(res.Outliers)
	}
}

func printMembers(members []int) {
	for _, m := range members {
		fmt.Printf(" %d", m)
	}
	fmt.Println()
}
